// Convergence analytics over sampled time series: how fast an adaptive
// scheme settles and how much it oscillates once settled. Used by the
// UPDATE_PERIOD ablation (Section III.C's trade-off) and the dynamic
// scenario tests (Figs. 8-11).
#pragma once

#include "stats/timeseries.hpp"

namespace wlan::stats {

struct ConvergenceReport {
  /// Mean of the settled tail (the last `settled_fraction` of the series).
  double settled_mean = 0.0;
  /// Standard deviation within the settled tail (residual oscillation —
  /// the paper's Fig. 2-vs-13 flatness argument shows up here).
  double settled_stddev = 0.0;
  /// First sample time at which the series reaches `threshold_fraction` of
  /// settled_mean and stays within the tail band thereafter is NOT
  /// required — this is the classic "time to X%" metric.
  double time_to_threshold = 0.0;
  /// True when the series never reached the threshold.
  bool never_converged = false;
};

/// Analyzes a series (e.g. windowed Mb/s vs time).
///
/// `settled_fraction` — the trailing fraction of samples treated as the
/// converged regime (default: last 25%).
/// `threshold_fraction` — "converged" means reaching this fraction of the
/// settled mean (default 90%).
ConvergenceReport analyze_convergence(const TimeSeries& series,
                                      double settled_fraction = 0.25,
                                      double threshold_fraction = 0.9);

}  // namespace wlan::stats
