#include "phy/medium.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace wlan::phy {

Medium::Medium(sim::Simulator& simulator, const PropagationModel& propagation)
    : sim_(simulator), propagation_(propagation) {}

NodeId Medium::add_node(const Vec2& position, MediumClient& client) {
  if (finalized_) throw std::logic_error("Medium: add_node after finalize()");
  nodes_.push_back(NodeRec{position, &client, 0, false, {}, {}});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Medium::finalize() {
  if (finalized_) throw std::logic_error("Medium: finalize() called twice");
  finalized_ = true;
  const auto n = static_cast<NodeId>(nodes_.size());
  for (NodeId s = 0; s < n; ++s) {
    auto& src = nodes_[static_cast<std::size_t>(s)];
    for (NodeId o = 0; o < n; ++o) {
      if (s == o) continue;
      const auto& dst = nodes_[static_cast<std::size_t>(o)];
      if (propagation_.can_sense(src.position, dst.position))
        src.audible_at.push_back(o);
      if (propagation_.can_decode(src.position, dst.position))
        src.decodable_at.push_back(o);
    }
  }
  // All per-transmission state is sized once here and reused across every
  // transmission lifetime: one TxSlot per node plus one flat block of
  // corruption-mark bits per (source, receiver) pair.
  tx_slots_.assign(nodes_.size(), TxSlot{});
  words_per_tx_ = (nodes_.size() + 63) / 64;
  corrupt_.assign(nodes_.size() * words_per_tx_, 0);
  scratch_corrupt_.assign(words_per_tx_, 0);
  active_.reserve(nodes_.size());
}

bool Medium::is_busy_for(NodeId n) const {
  return nodes_[static_cast<std::size_t>(n)].sensed_count > 0;
}

bool Medium::is_transmitting(NodeId n) const {
  return nodes_[static_cast<std::size_t>(n)].transmitting;
}

bool Medium::senses(NodeId source, NodeId observer) const {
  const auto& a = nodes_[static_cast<std::size_t>(source)].audible_at;
  return std::find(a.begin(), a.end(), observer) != a.end();
}

bool Medium::decodes(NodeId source, NodeId observer) const {
  const auto& d = nodes_[static_cast<std::size_t>(source)].decodable_at;
  return std::find(d.begin(), d.end(), observer) != d.end();
}

void Medium::mark_corrupt(NodeId tx_src, NodeId receiver) {
  if (receiver == tx_src) return;  // the source is never its own receiver
  corrupt_words(tx_src)[static_cast<std::size_t>(receiver) >> 6] |=
      std::uint64_t{1} << (static_cast<unsigned>(receiver) & 63u);
}

void Medium::interfere(NodeId victim_src, NodeId interferer, NodeId receiver) {
  if (receiver == victim_src) return;
  if (capture_ratio_ > 0.0) {
    const auto& rx = nodes_[static_cast<std::size_t>(receiver)].position;
    const double wanted = propagation_.rx_power(
        nodes_[static_cast<std::size_t>(victim_src)].position, rx);
    const double noise = propagation_.rx_power(
        nodes_[static_cast<std::size_t>(interferer)].position, rx);
    if (wanted >= capture_ratio_ * noise) return;  // captured: copy survives
  }
  mark_corrupt(victim_src, receiver);
}

void Medium::start_transmission(NodeId src, const Frame& frame,
                                sim::Duration airtime, bool slot_committed) {
  if (!finalized_) throw std::logic_error("Medium: not finalized");
  last_start_slot_committed_ = slot_committed;
  NodeRec& source = nodes_[static_cast<std::size_t>(src)];
  if (source.transmitting)
    throw std::logic_error("Medium: node already transmitting");
  assert(frame.src == src);
  assert(airtime > sim::Duration::zero());

  const sim::Time start = sim_.now();
  const sim::Time end = start + airtime;
  const std::uint64_t id = next_tx_id_++;
  ++tx_started_;

  // Reuse this node's pooled slot: overwrite the previous occupant in
  // place and reset its corruption marks.
  TxSlot& tx = tx_slots_[static_cast<std::size_t>(src)];
  tx.id = id;
  tx.end = end;
  tx.frame = frame;
  std::fill_n(corrupt_words(src), words_per_tx_, std::uint64_t{0});

  // Mutual-corruption bookkeeping against transmissions already in flight.
  // For each active transmission F and the new one G:
  //  * G's source is a dead receiver for F (half-duplex), and every node
  //    that hears G loses its copy of F;
  //  * symmetrically, F's source and everyone who hears F lose their copy
  //    of G.
  // (Mark order is irrelevant — marking only sets per-receiver bits — so
  // iterating active_ in its unordered swap-removal order is fine.)
  for (NodeId o : active_) {
    const TxSlot& other = tx_slots_[static_cast<std::size_t>(o)];
    // Transmissions are half-open intervals [start, end): one that ends
    // exactly now does not overlap us, even if its end event has not fired
    // yet (event ordering at equal timestamps is insertion order).
    if (other.end <= start) continue;
    // Half-duplex: each source is a dead receiver for the other frame,
    // capture or not.
    mark_corrupt(o, src);
    mark_corrupt(src, o);
    // Mutual interference at every receiver in range (capture-aware).
    for (NodeId r : source.audible_at) interfere(o, src, r);
    const auto& other_src = nodes_[static_cast<std::size_t>(o)];
    for (NodeId r : other_src.audible_at) interfere(src, o, r);
  }

  source.transmitting = true;
  tx.active_pos = static_cast<std::uint32_t>(active_.size());
  active_.push_back(src);

  // Carrier-sense: every listener audible to us sees one more transmission.
  for (NodeId o : source.audible_at) {
    NodeRec& obs = nodes_[static_cast<std::size_t>(o)];
    if (++obs.sensed_count == 1) obs.client->on_channel_busy(start);
  }
  // The flag is only meaningful inside the synchronous busy cascade above;
  // drop it so a later out-of-cascade read gets the conservative answer.
  last_start_slot_committed_ = false;

  sim_.schedule_at(end, [this, src, id] { end_transmission(src, id); });
}

void Medium::end_transmission(NodeId src, std::uint64_t tx_id) {
  TxSlot& tx = tx_slots_[static_cast<std::size_t>(src)];
  assert(tx.id == tx_id && "transmission ended twice");
  (void)tx_id;

  // O(1) removal from the in-flight list via the slot's back-pointer.
  const std::uint32_t pos = tx.active_pos;
  const NodeId moved = active_.back();
  active_[pos] = moved;
  tx_slots_[static_cast<std::size_t>(moved)].active_pos = pos;
  active_.pop_back();
  tx.id = 0;

  NodeRec& source = nodes_[static_cast<std::size_t>(src)];
  source.transmitting = false;

  const sim::Time now = sim_.now();

  // Snapshot the frame and this slot's corruption marks into reusable
  // scratch storage: a delivery callback may start a new transmission from
  // this very source, which would overwrite the slot mid-loop.
  const Frame frame = tx.frame;
  std::copy_n(corrupt_words(src), words_per_tx_, scratch_corrupt_.begin());

  // Promiscuous delivery to every receiver that can decode the source —
  // BEFORE the carrier-sense release, so that when the idle transition
  // fires a receiver already knows whether the ending busy period carried
  // an intelligible frame (the MAC's EIFS rule depends on this).
  for (NodeId r : source.decodable_at) {
    const bool clean =
        ((scratch_corrupt_[static_cast<std::size_t>(r) >> 6] >>
          (static_cast<unsigned>(r) & 63u)) &
         1u) == 0;
    if (!clean) ++corrupt_deliveries_;
    nodes_[static_cast<std::size_t>(r)].client->on_frame_received(frame, clean,
                                                                  now);
  }

  for (NodeId o : source.audible_at) {
    NodeRec& obs = nodes_[static_cast<std::size_t>(o)];
    assert(obs.sensed_count > 0);
    if (--obs.sensed_count == 0) obs.client->on_channel_idle(now);
  }
}

}  // namespace wlan::phy
