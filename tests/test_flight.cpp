// Tests for the frame-lifecycle flight recorder (src/obs/flight.hpp):
// unit-level span-chain accounting on a hand-driven recorder, the
// integration path through run_scenario (flight.* metrics), and the
// acceptance bar shared with the rest of obs/ — a run with the recorder
// attached is bit-identical to one without.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "util/fnv.hpp"

namespace {

using namespace wlan;
using exp::ScenarioConfig;
using exp::SchemeConfig;

/// Restores the process-wide flight override on scope exit.
struct FlightOverrideGuard {
  explicit FlightOverrideGuard(int v) { obs::SimObs::set_flight_override(v); }
  ~FlightOverrideGuard() { obs::SimObs::set_flight_override(-1); }
};

// ------------------------------------------------------- span accounting

TEST(Flight, PackAttemptDetailKeepsFieldsSeparate) {
  const std::uint64_t d = obs::pack_attempt_detail(/*slots=*/0xABCDEF,
                                                   /*cohort=*/0x123456);
  EXPECT_EQ(d & 0xFFFFFFFFu, 0xABCDEFu);
  EXPECT_EQ(d >> 32, 0x123456u);
}

TEST(Flight, TrafficFrameFullLifecycle) {
  obs::FlightRecorder fr;
  // enqueue at t=0 -> contention at t=100 -> attempt after 7 slots at
  // t=500 -> on air 200ns -> clean verdict -> ACK at t=1000.
  fr.on_enqueue(0, /*node=*/3, /*queue_size=*/1, /*accepted=*/true);
  fr.on_contention(100, 3, /*slots_consumed=*/10);
  fr.on_attempt(500, 3, /*slots_consumed=*/17, /*cohort_id=*/0);
  fr.on_air(500, 3, /*air_ns=*/200);
  fr.on_verdict(700, 3, /*clean=*/true);
  fr.on_ack(1000, 3);

  const obs::FlightTotals& t = fr.totals();
  EXPECT_EQ(t.frames_enqueued, 1u);
  EXPECT_EQ(t.frames_saturated, 0u);
  EXPECT_EQ(t.frames_completed, 1u);
  EXPECT_EQ(t.frames_dropped, 0u);
  EXPECT_EQ(t.attempts, 1u);
  EXPECT_EQ(t.timeouts, 0u);
  EXPECT_EQ(t.slots_waited, 7u);  // delta from the contention-entry mark
  EXPECT_EQ(t.air_ns, 200);
  EXPECT_EQ(t.queue_ns, 100);              // enqueue -> first contention
  EXPECT_EQ(t.contention_ns, 1000 - 100 - 200);  // span minus airtime

  const std::vector<obs::FrameStat> frames = fr.completed_frames();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].frame, 1u);
  EXPECT_EQ(frames[0].node, 3u);
  EXPECT_EQ(frames[0].enqueue_ns, 0);
  EXPECT_EQ(frames[0].contention_ns, 100);
  EXPECT_EQ(frames[0].complete_ns, 1000);
  EXPECT_EQ(frames[0].attempts, 1u);
  EXPECT_FALSE(frames[0].dropped);
  EXPECT_EQ(fr.attempts_per_success(), 1.0);
}

TEST(Flight, RetryAfterTimeoutAccumulatesOnSameFrame) {
  obs::FlightRecorder fr;
  fr.on_enqueue(0, 1, 1, true);
  fr.on_contention(10, 1, 0);
  fr.on_attempt(100, 1, 5, /*cohort_id=*/42);  // 5 slots waited
  fr.on_air(100, 1, 50);
  fr.on_verdict(150, 1, /*clean=*/false);      // collision at the receiver
  fr.on_timeout(300, 1);
  fr.on_attempt(600, 1, 14, 42);               // 9 more slots
  fr.on_air(600, 1, 50);
  fr.on_verdict(650, 1, true);
  fr.on_ack(800, 1);

  const obs::FlightTotals& t = fr.totals();
  EXPECT_EQ(t.frames_completed, 1u);
  EXPECT_EQ(t.attempts, 2u);
  EXPECT_EQ(t.timeouts, 1u);
  EXPECT_EQ(t.verdicts_corrupt, 1u);
  EXPECT_EQ(t.slots_waited, 14u);
  EXPECT_EQ(t.air_ns, 100);
  EXPECT_EQ(fr.attempts_per_success(), 2.0);
}

TEST(Flight, TailDropClosesFrameImmediately) {
  obs::FlightRecorder fr;
  fr.on_enqueue(0, 2, 1, true);
  fr.on_enqueue(50, 2, 1, /*accepted=*/false);  // queue full: tail drop
  const obs::FlightTotals& t = fr.totals();
  EXPECT_EQ(t.frames_enqueued, 1u);  // only the accepted push counts
  EXPECT_EQ(t.frames_dropped, 1u);
  EXPECT_EQ(t.frames_completed, 0u);
  // The drop landed in the per-node event ring with its own FrameId.
  const std::vector<obs::FlightEvent> evs = fr.node_events(2);
  ASSERT_GE(evs.size(), 2u);
  EXPECT_EQ(evs.back().kind, obs::fev::kDrop);
  EXPECT_NE(evs.back().frame, evs.front().frame);
}

TEST(Flight, SaturatedStationMintsAtContentionEntry) {
  obs::FlightRecorder fr;
  // No enqueue ever happens: the station is backlogged. The first
  // contention entry mints the FrameId; the ACK closes it; the next
  // contention entry mints the next.
  fr.on_contention(10, 0, 0);
  fr.on_attempt(50, 0, 3, 0);
  fr.on_air(50, 0, 20);
  fr.on_ack(100, 0);
  fr.on_contention(150, 0, 3);
  fr.on_attempt(200, 0, 8, 0);
  fr.on_air(200, 0, 20);
  fr.on_ack(260, 0);

  const obs::FlightTotals& t = fr.totals();
  EXPECT_EQ(t.frames_saturated, 2u);
  EXPECT_EQ(t.frames_enqueued, 0u);
  EXPECT_EQ(t.frames_completed, 2u);
  EXPECT_EQ(t.queue_ns, 0);  // no queue residency without an enqueue
  const std::vector<obs::FrameStat> frames = fr.completed_frames();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].enqueue_ns, -1);
  EXPECT_NE(frames[0].frame, frames[1].frame);
}

TEST(Flight, ReContentionAfterBusyDoesNotReopenSpan) {
  obs::FlightRecorder fr;
  fr.on_contention(10, 0, 0);
  fr.on_contention(400, 0, 2);  // medium went busy, wait restarted
  fr.on_attempt(500, 0, 6, 0);
  fr.on_air(500, 0, 20);
  fr.on_ack(600, 0);
  const std::vector<obs::FrameStat> frames = fr.completed_frames();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].contention_ns, 10);  // first entry won
  EXPECT_EQ(frames[0].slots_waited, 6u);   // delta from the FIRST mark
}

TEST(Flight, ExcerptNamesFrameIds) {
  obs::FlightRecorder fr;
  fr.on_enqueue(0, 5, 1, true);
  fr.on_contention(10, 5, 0);
  const std::string ex = fr.excerpt(5);
  EXPECT_NE(ex.find("node 5"), std::string::npos);
  EXPECT_NE(ex.find("frame=1"), std::string::npos);
  EXPECT_NE(ex.find("enqueue"), std::string::npos);
  // A node with no records says so instead of fabricating history.
  EXPECT_NE(fr.excerpt(9).find("no flight records"), std::string::npos);
}

TEST(Flight, RingOverwritesOldestAndCountsDrops) {
  obs::FlightRecorder fr(/*ring_capacity=*/4, /*frames_capacity=*/2);
  for (int i = 0; i < 6; ++i) {
    fr.on_contention(i * 100, 0, static_cast<std::uint64_t>(i));
    fr.on_ack(i * 100 + 50, 0);
  }
  // 12 records pushed through a 4-slot ring: only the newest 4 survive.
  const std::vector<obs::FlightEvent> evs = fr.node_events(0);
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs.front().time_ns, 400);
  // Totals still see every frame; the FrameStat table kept the last 2.
  EXPECT_EQ(fr.totals().frames_completed, 6u);
  EXPECT_EQ(fr.completed_frames().size(), 2u);
  EXPECT_EQ(fr.completed_dropped(), 4u);
}

TEST(Flight, CsvAndChromeJsonExports) {
  obs::FlightRecorder fr;
  fr.on_enqueue(0, 1, 1, true);
  fr.on_contention(100, 1, 0);
  fr.on_attempt(500, 1, 7, 3);
  fr.on_air(500, 1, 200);
  fr.on_ack(1000, 1);

  const std::string csv = fr.frames_csv();
  EXPECT_NE(csv.find("frame,node,enqueue_us"), std::string::npos);
  EXPECT_NE(csv.find(",ack\n"), std::string::npos);

  const std::string json = fr.chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_EQ(json.find("NaN"), std::string::npos);
}

// ------------------------------------------------------ integration path

exp::RunOptions quick_series_options() {
  exp::RunOptions opts;
  opts.warmup = sim::Duration::seconds(0.1);
  opts.measure = sim::Duration::seconds(0.3);
  opts.sample_period = sim::Duration::seconds(0.05);
  opts.record_series = true;  // bypasses the run cache
  return opts;
}

TEST(Flight, RunScenarioExportsFlightMetricsSaturated) {
  FlightOverrideGuard guard(1);
  const auto r = exp::run_scenario(ScenarioConfig::connected(6, 1),
                                   SchemeConfig::standard(),
                                   quick_series_options());
  EXPECT_GT(r.metrics.get("flight.frames_saturated", 0.0), 0.0);
  EXPECT_EQ(r.metrics.get("flight.frames_enqueued", -1.0), 0.0);
  const double completed = r.metrics.get("flight.frames_completed", 0.0);
  const double attempts = r.metrics.get("flight.attempts", 0.0);
  EXPECT_GT(completed, 0.0);
  EXPECT_GE(attempts, completed);  // every success needed >= 1 attempt
  EXPECT_GE(r.metrics.get("flight.attempts_per_success", 0.0), 1.0);
}

TEST(Flight, RunScenarioExportsFlightMetricsTraffic) {
  FlightOverrideGuard guard(1);
  auto scenario = ScenarioConfig::connected(6, 2);
  scenario.traffic = traffic::TrafficConfig::poisson(1.0);
  const auto r = exp::run_scenario(scenario, SchemeConfig::standard(),
                                   quick_series_options());
  EXPECT_GT(r.metrics.get("flight.frames_enqueued", 0.0), 0.0);
  EXPECT_GT(r.metrics.get("flight.frames_completed", 0.0), 0.0);
  EXPECT_GT(r.metrics.get("flight.queue_ns", -1.0), 0.0);
}

TEST(Flight, MetricsAbsentWhenRecorderOff) {
  FlightOverrideGuard guard(0);
  const auto r = exp::run_scenario(ScenarioConfig::connected(6, 1),
                                   SchemeConfig::standard(),
                                   quick_series_options());
  EXPECT_FALSE(r.metrics.contains("flight.frames_completed"));
}

// ------------------------------------------------- zero-perturbation bar

void hash_series(const stats::TimeSeries& s, util::Fnv1a& h) {
  for (const auto& sample : s.samples()) {
    h.mix_double_word(sample.t_seconds);
    h.mix_double_word(sample.value);
  }
}

std::uint64_t hash_run(const exp::RunResult& r) {
  util::Fnv1a h;
  hash_series(r.throughput_series, h);
  hash_series(r.control_series, h);
  h.mix_double_word(r.total_mbps);
  for (double v : r.per_station_mbps) h.mix_double_word(v);
  h.mix_double_word(static_cast<double>(r.successes));
  h.mix_double_word(static_cast<double>(r.failures));
  h.mix_double_word(r.mean_delay_s);
  h.mix_double_word(r.drop_rate);
  return h.digest();
}

TEST(FlightIdentity, RecorderChangesNothing) {
  const exp::RunOptions opts = quick_series_options();
  for (const auto& scenario :
       {ScenarioConfig::connected(8, 2), ScenarioConfig::hidden(8, 16.0, 3)}) {
    for (const auto& scheme :
         {SchemeConfig::standard(), SchemeConfig::wtop_csma()}) {
      std::uint64_t off_hash, on_hash;
      {
        FlightOverrideGuard off(0);
        off_hash = hash_run(exp::run_scenario(scenario, scheme, opts));
      }
      {
        FlightOverrideGuard on(1);
        const auto r = exp::run_scenario(scenario, scheme, opts);
        on_hash = hash_run(r);
        EXPECT_GT(r.metrics.get("flight.frames_completed", 0.0), 0.0);
      }
      EXPECT_EQ(off_hash, on_hash)
          << scheme.name() << ": flight recorder must not perturb the run";
    }
  }
}

TEST(FlightIdentity, RecorderChangesNothingWithTraffic) {
  auto scenario = ScenarioConfig::connected(6, 2);
  scenario.traffic = traffic::TrafficConfig::poisson(1.0);
  const exp::RunOptions opts = quick_series_options();
  std::uint64_t off_hash, on_hash;
  {
    FlightOverrideGuard off(0);
    off_hash = hash_run(exp::run_scenario(scenario, SchemeConfig::standard(), opts));
  }
  {
    FlightOverrideGuard on(1);
    on_hash = hash_run(exp::run_scenario(scenario, SchemeConfig::standard(), opts));
  }
  EXPECT_EQ(off_hash, on_hash);
}

}  // namespace
