// google-benchmark micro-benchmarks of the simulation substrate: event
// queue throughput, medium transmission processing, fixed-point and
// optimal-p solvers, and end-to-end simulated-seconds-per-wall-second.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "analysis/bianchi.hpp"
#include "analysis/ppersistent.hpp"
#include "analysis/randomreset.hpp"
#include "exp/runner.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace wlan;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  util::Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i)
      q.schedule(sim::Time::from_ns(
                     static_cast<std::int64_t>(rng.uniform_int(std::uint64_t{1000000}))),
                 [] {});
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(100000);

void BM_SimulatorSelfSchedulingChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int remaining = 100000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sim.schedule_after(sim::Duration::nanoseconds(10), tick);
    };
    sim.schedule_after(sim::Duration::nanoseconds(10), tick);
    sim.run_all();
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SimulatorSelfSchedulingChain);

void BM_RngUniform(benchmark::State& state) {
  util::Rng rng(7);
  double acc = 0;
  for (auto _ : state) acc += rng.uniform();
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngUniform);

void BM_FixedPointSolve(benchmark::State& state) {
  const auto q = analysis::random_reset_distribution(2, 0.5, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::solve_fixed_point(q, 40, 8));
  }
}
BENCHMARK(BM_FixedPointSolve);

void BM_OptimalMasterProbability(benchmark::State& state) {
  const mac::WifiParams params;
  std::vector<double> w(static_cast<std::size_t>(state.range(0)), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::optimal_master_probability(w, params));
  }
}
BENCHMARK(BM_OptimalMasterProbability)->Arg(10)->Arg(60);

/// End-to-end MAC simulation speed: simulated milliseconds per iteration of
/// a 20-station saturated connected network near its optimal operating
/// point. items/s * 100 = simulated-ms/s.
void BM_MacSimulation20Stations(benchmark::State& state) {
  auto net = exp::build_network(exp::ScenarioConfig::connected(20, 1),
                                exp::SchemeConfig::fixed_p_persistent(0.01));
  net->start();
  for (auto _ : state) {
    net->run_for(sim::Duration::milliseconds(100));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["events"] = static_cast<double>(
      net->simulator().events_executed());
}
BENCHMARK(BM_MacSimulation20Stations)->Unit(benchmark::kMillisecond);

void BM_MacSimulationHidden40(benchmark::State& state) {
  auto net = exp::build_network(exp::ScenarioConfig::hidden(40, 16.0, 1),
                                exp::SchemeConfig::standard());
  net->start();
  for (auto _ : state) {
    net->run_for(sim::Duration::milliseconds(100));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MacSimulationHidden40)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
