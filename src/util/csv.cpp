#include "util/csv.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace wlan::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  flush_handle_ = register_flush([this] { out_.flush(); });
}

CsvWriter::~CsvWriter() { unregister_flush(flush_handle_); }

void CsvWriter::header(std::initializer_list<std::string> names) {
  header(std::vector<std::string>(names));
}

void CsvWriter::header(const std::vector<std::string>& names) { row(names); }

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::row_numeric(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_double(v, precision));
  row(cells);
}

void CsvWriter::flush() { out_.flush(); }

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string format_double(double v, int significant_digits) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  std::ostringstream os;
  os.precision(significant_digits);
  os << v;
  return os.str();
}

}  // namespace wlan::util
