// Integration tests with hidden nodes: the phenomena of Section I/V-VI.
// Deterministic seeds keep these reproducible; the assertions target the
// paper's qualitative claims (orderings, quasi-concavity, idle-slot drift),
// not absolute numbers.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/quasiconcave.hpp"
#include "exp/runner.hpp"
#include "mac/network.hpp"

namespace {

using namespace wlan;
using namespace wlan::exp;

RunOptions fast_opts(double warm = 10.0, double measure = 10.0) {
  RunOptions o;
  o.warmup = sim::Duration::seconds(warm);
  o.measure = sim::Duration::seconds(measure);
  return o;
}

TEST(HiddenIntegration, TopologyActuallyHasHiddenPairs) {
  const auto scenario = ScenarioConfig::hidden(20, 16.0, 1);
  const auto result =
      run_scenario(scenario, SchemeConfig::standard(), fast_opts(1, 2));
  EXPECT_GT(result.hidden_pairs, 0u);
}

TEST(HiddenIntegration, IdleSenseCollapsesWithHiddenNodes) {
  // Fig. 1's headline: IdleSense beats Std 802.11 when connected but does
  // WORSE than Std 802.11 with hidden nodes.
  const int n = 20;
  const auto connected = ScenarioConfig::connected(n, 1);
  const auto hidden = ScenarioConfig::hidden(n, 16.0, 1);
  const auto opts = fast_opts();

  const auto is_conn =
      run_scenario(connected, SchemeConfig::idle_sense_scheme(), opts);
  const auto std_conn = run_scenario(connected, SchemeConfig::standard(), opts);
  const auto is_hidden =
      run_scenario(hidden, SchemeConfig::idle_sense_scheme(), opts);
  const auto std_hidden = run_scenario(hidden, SchemeConfig::standard(), opts);

  EXPECT_GT(is_conn.total_mbps, std_conn.total_mbps);
  EXPECT_LT(is_hidden.total_mbps, std_hidden.total_mbps);
}

TEST(HiddenIntegration, ToraBeatsWTopWithHiddenNodes) {
  // Figs. 6-7: the exponential-backoff scheme outperforms the optimal
  // p-persistent scheme when hidden nodes exist.
  double tora_sum = 0.0, wtop_sum = 0.0;
  for (std::uint64_t seed : {1, 2, 3}) {
    const auto scenario = ScenarioConfig::hidden(20, 16.0, seed);
    const auto opts = fast_opts(15.0, 10.0);
    tora_sum +=
        run_scenario(scenario, SchemeConfig::tora_csma(), opts).total_mbps;
    wtop_sum +=
        run_scenario(scenario, SchemeConfig::wtop_csma(), opts).total_mbps;
  }
  EXPECT_GT(tora_sum, wtop_sum);
}

TEST(HiddenIntegration, AdaptiveSchemesBeatIdleSenseWithHiddenNodes) {
  const auto scenario = ScenarioConfig::hidden(20, 16.0, 2);
  const auto opts = fast_opts(15.0, 10.0);
  const auto idle =
      run_scenario(scenario, SchemeConfig::idle_sense_scheme(), opts);
  const auto wtop = run_scenario(scenario, SchemeConfig::wtop_csma(), opts);
  const auto tora = run_scenario(scenario, SchemeConfig::tora_csma(), opts);
  EXPECT_GT(wtop.total_mbps, idle.total_mbps);
  EXPECT_GT(tora.total_mbps, idle.total_mbps);
}

TEST(HiddenIntegration, WTopIdleSlotsDependOnConfiguration) {
  // Table III: wTOP's converged idle-slot count differs between connected
  // and hidden configurations (so no fixed IdleSense target can be right),
  // while IdleSense pins its observable near the same value in both.
  const int n = 20;
  const auto opts = fast_opts(15.0, 10.0);
  const auto wtop_conn = run_scenario(ScenarioConfig::connected(n, 1),
                                      SchemeConfig::wtop_csma(), opts);
  const auto wtop_hidden = run_scenario(ScenarioConfig::hidden(n, 16.0, 1),
                                        SchemeConfig::wtop_csma(), opts);
  EXPECT_GT(wtop_hidden.ap_avg_idle_slots,
            1.5 * wtop_conn.ap_avg_idle_slots);

  const auto is_conn = run_scenario(ScenarioConfig::connected(n, 1),
                                    SchemeConfig::idle_sense_scheme(), opts);
  const auto is_hidden = run_scenario(ScenarioConfig::hidden(n, 16.0, 1),
                                      SchemeConfig::idle_sense_scheme(), opts);
  EXPECT_NEAR(is_hidden.ap_avg_idle_slots / is_conn.ap_avg_idle_slots, 1.0,
              0.5);
}

TEST(HiddenIntegration, ThroughputQuasiConcaveInPWithHiddenNodes) {
  // Fig. 4 (coarse): measured throughput vs p on a hidden topology is
  // unimodal within noise tolerance.
  const auto scenario = ScenarioConfig::hidden(15, 16.0, 3);
  std::vector<double> ys;
  for (double logp = -7.0; logp <= -0.7; logp += 0.7) {
    const auto r = run_scenario(
        scenario, SchemeConfig::fixed_p_persistent(std::exp(logp)),
        fast_opts(1.0, 4.0));
    ys.push_back(r.total_mbps);
  }
  const auto report = analysis::check_unimodal(ys, 0.10);
  EXPECT_TRUE(report.unimodal) << "violation=" << report.max_violation;
}

TEST(HiddenIntegration, ThroughputQuasiConcaveInP0WithHiddenNodes) {
  // Fig. 5 (coarse): throughput vs p0 for RandomReset(0; p0).
  const auto scenario = ScenarioConfig::hidden(15, 16.0, 3);
  std::vector<double> ys;
  for (double p0 = 0.0; p0 <= 1.001; p0 += 0.2) {
    const auto r =
        run_scenario(scenario, SchemeConfig::fixed_random_reset(0, p0),
                     fast_opts(1.0, 4.0));
    ys.push_back(r.total_mbps);
  }
  const auto report = analysis::check_unimodal(ys, 0.10);
  EXPECT_TRUE(report.unimodal) << "violation=" << report.max_violation;
}

TEST(HiddenIntegration, ExplicitTwoCliqueTopology) {
  // Deterministic worst case: two groups hidden from each other. Standard
  // 802.11 suffers persistent cross-group collisions; TORA-CSMA backs
  // off far enough to restore useful throughput.
  const int n = 6;  // two cliques of 3
  auto make_net = [&](SchemeConfig scheme) {
    std::vector<std::vector<bool>> sense(
        static_cast<std::size_t>(n + 1),
        std::vector<bool>(static_cast<std::size_t>(n + 1), false));
    for (int i = 0; i <= n; ++i)
      for (int j = 0; j <= n; ++j) {
        if (i == j) continue;
        const bool ap_involved = i == 0 || j == 0;
        const bool same_group = (i <= 3) == (j <= 3);
        sense[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            ap_involved || same_group;
      }
    mac::WifiParams params;
    auto net = std::make_unique<mac::Network>(
        params, std::make_unique<phy::ExplicitGraph>(sense, sense),
        phy::graph_position(0), /*seed=*/11);
    for (int i = 1; i <= n; ++i)
      net->add_station(phy::graph_position(static_cast<std::size_t>(i)),
                       make_strategy(scheme, params, i - 1));
    if (scheme.kind == SchemeKind::kToraCsma)
      net->set_controller(std::make_unique<core::ToraCsmaController>(params));
    net->finalize();
    return net;
  };

  auto run = [&](SchemeConfig scheme) {
    auto net = make_net(scheme);
    net->start();
    net->run_for(sim::Duration::seconds(15.0));
    net->reset_counters();
    net->run_for(sim::Duration::seconds(10.0));
    return net->total_mbps();
  };

  const double std_mbps = run(SchemeConfig::standard());
  const double tora_mbps = run(SchemeConfig::tora_csma());
  // TORA must at least match standard 802.11 here (its optimality claim is
  // about the backoff family, and std 802.11 is already close to optimal
  // on this particular topology) and stay far from IdleSense-style
  // collapse.
  EXPECT_GT(tora_mbps, 0.85 * std_mbps);
  EXPECT_GT(tora_mbps, 10.0);
}

}  // namespace
