// Unit tests for the simulation time types.
#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace {

using wlan::sim::Duration;
using wlan::sim::Time;

TEST(Duration, Constructors) {
  EXPECT_EQ(Duration::nanoseconds(1500).ns(), 1500);
  EXPECT_EQ(Duration::microseconds(9).ns(), 9000);
  EXPECT_EQ(Duration::milliseconds(250).ns(), 250'000'000);
  EXPECT_EQ(Duration::seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(Duration::zero().ns(), 0);
}

TEST(Duration, ConversionsRoundTrip) {
  const auto d = Duration::microseconds(34);
  EXPECT_DOUBLE_EQ(d.us(), 34.0);
  EXPECT_DOUBLE_EQ(d.ms(), 0.034);
  EXPECT_DOUBLE_EQ(d.s(), 34e-6);
}

TEST(Duration, Arithmetic) {
  const auto a = Duration::microseconds(10);
  const auto b = Duration::microseconds(4);
  EXPECT_EQ((a + b).us(), 14.0);
  EXPECT_EQ((a - b).us(), 6.0);
  EXPECT_EQ((a * 3).us(), 30.0);
  EXPECT_EQ((a / 2).us(), 5.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(Duration::microseconds(9), Duration::microseconds(16));
  EXPECT_EQ(Duration::microseconds(1), Duration::nanoseconds(1000));
  EXPECT_GE(Duration::seconds(1.0), Duration::milliseconds(1000));
}

TEST(Duration, ForBitsRoundsUp) {
  // 8000 bits at 54 Mb/s = 148148.148.. ns -> must round UP.
  const auto d = Duration::for_bits(8000, 54e6);
  EXPECT_EQ(d.ns(), 148149);
  // Exact division stays exact: 1000 bits at 1 Gb/s = 1000 ns.
  EXPECT_EQ(Duration::for_bits(1000, 1e9).ns(), 1000);
}

TEST(Duration, SecondsRounding) {
  EXPECT_EQ(Duration::seconds(1e-9).ns(), 1);
  EXPECT_EQ(Duration::seconds(2.5e-9).ns(), 3);  // round half up
}

TEST(Time, Arithmetic) {
  const Time t = Time::from_ns(1000);
  EXPECT_EQ((t + Duration::nanoseconds(500)).ns(), 1500);
  EXPECT_EQ((t - Duration::nanoseconds(500)).ns(), 500);
  EXPECT_EQ((Time::from_ns(1500) - t).ns(), 500);
}

TEST(Time, FromSeconds) {
  EXPECT_EQ(Time::from_seconds(2.0).ns(), 2'000'000'000);
  EXPECT_DOUBLE_EQ(Time::from_seconds(2.0).s(), 2.0);
}

TEST(Time, Ordering) {
  EXPECT_LT(Time::zero(), Time::from_ns(1));
  EXPECT_LT(Time::from_seconds(100.0), Time::max());
}

TEST(Time, CompoundAssignment) {
  Time t = Time::zero();
  t += Duration::microseconds(9);
  t += Duration::microseconds(9);
  EXPECT_EQ(t.ns(), 18000);
}

TEST(Duration, CompoundAssignment) {
  Duration d = Duration::zero();
  d += Duration::microseconds(5);
  d -= Duration::microseconds(2);
  EXPECT_EQ(d.us(), 3.0);
}

}  // namespace
