#include "util/shutdown.hpp"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace wlan::util {

namespace {

// The registry mutex is best-effort inside a signal handler (locking is
// not async-signal-safe); try_lock keeps the handler from self-deadlocking
// when the signal lands inside register/unregister — in that worst case
// the handler skips the sink flushes and still flushes stdio.
std::mutex g_mutex;
std::map<FlushHandle, std::function<void()>>& registry() {
  static auto* r = new std::map<FlushHandle, std::function<void()>>();
  return *r;
}
FlushHandle g_next_handle = 1;

void flush_all_unlocked() {
  for (auto& [handle, fn] : registry()) {
    try {
      fn();
    } catch (...) {
      // A sink that cannot flush must not stop the others.
    }
  }
}

extern "C" void shutdown_signal_handler(int signo) {
  if (g_mutex.try_lock()) {
    flush_all_unlocked();
    g_mutex.unlock();
  }
  std::fflush(nullptr);
  const char note[] = "\n[shutdown] caught signal, flushed partial output\n";
#ifndef _WIN32
  // write(2) is async-signal-safe where fprintf is not.
  ssize_t ignored = ::write(2, note, sizeof note - 1);
  (void)ignored;
#else
  std::fputs(note, stderr);
#endif
  std::_Exit(128 + signo);
}

}  // namespace

FlushHandle register_flush(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(g_mutex);
  const FlushHandle handle = g_next_handle++;
  registry().emplace(handle, std::move(fn));
  return handle;
}

void unregister_flush(FlushHandle handle) {
  std::lock_guard<std::mutex> lock(g_mutex);
  registry().erase(handle);
}

void shutdown_flush() {
  std::lock_guard<std::mutex> lock(g_mutex);
  flush_all_unlocked();
}

void install_shutdown_handlers() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  std::signal(SIGINT, shutdown_signal_handler);
  std::signal(SIGTERM, shutdown_signal_handler);
}

}  // namespace wlan::util
