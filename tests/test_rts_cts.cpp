// Tests of the RTS/CTS/NAV machinery — the hidden-node countermeasure the
// paper's Section I discusses (and argues is usually disabled).
#include <gtest/gtest.h>

#include <memory>

#include "exp/runner.hpp"
#include "mac/network.hpp"
#include "phy/propagation.hpp"

namespace {

using namespace wlan;
using namespace wlan::mac;
using sim::Duration;
using sim::Time;

WifiParams rts_params() {
  WifiParams p;
  p.rts_threshold_bits = 0;  // every data frame uses RTS/CTS
  return p;
}

std::unique_ptr<phy::PropagationModel> everyone_connected() {
  return std::make_unique<phy::DiscPropagation>(1e9, 1e9);
}

/// AP node 0; stations 1 and 2 mutually hidden, both connected to the AP.
std::unique_ptr<phy::PropagationModel> hidden_pair_graph() {
  std::vector<std::vector<bool>> sense{{false, true, true},
                                       {true, false, false},
                                       {true, false, false}};
  return std::make_unique<phy::ExplicitGraph>(sense, sense);
}

TEST(WifiParamsRts, ThresholdSemantics) {
  WifiParams p;
  EXPECT_FALSE(p.rts_cts_enabled());  // default 2347 octets: disabled
  p.rts_threshold_bits = 0;
  EXPECT_TRUE(p.rts_cts_enabled());
  p.rts_threshold_bits = p.payload_bits;  // strictly-greater rule
  EXPECT_FALSE(p.rts_cts_enabled());
}

TEST(WifiParamsRts, ControlFrameAirtimes) {
  const WifiParams p = rts_params();
  // 160 bits at 6 Mb/s = 26.67us + 20us preamble.
  EXPECT_NEAR(p.rts_airtime().us(), 46.7, 0.1);
  EXPECT_NEAR(p.cts_airtime().us(), 38.7, 0.1);
  EXPECT_GT(p.cts_timeout_after_rts_start(),
            p.rts_airtime() + p.sifs + p.cts_airtime());
}

TEST(RtsCts, SingleStationFourWayExchange) {
  const WifiParams params = rts_params();
  Network net(params, everyone_connected(), {0, 0}, 1);
  net.add_station({1, 0},
                  std::make_unique<PPersistentStrategy>(1.0, 1.0, false));
  net.finalize();
  net.start();

  // RTS starts at DIFS + slot; full exchange:
  const Time rts_start = Time::zero() + params.difs + params.slot;
  const Time ack_end = rts_start + params.rts_airtime() + params.sifs +
                       params.cts_airtime() + params.sifs +
                       params.data_airtime() + params.sifs +
                       params.ack_airtime();
  net.run_until(ack_end);

  EXPECT_EQ(net.counters().node(0).rts_attempts, 1u);
  EXPECT_EQ(net.counters().node(0).data_tx_attempts, 1u);
  EXPECT_EQ(net.counters().node(0).successes, 1u);
  EXPECT_EQ(net.counters().node(0).cts_timeouts, 0u);
  EXPECT_EQ(net.ap().rts_frames_received(), 1u);
  EXPECT_EQ(net.counters().node(0).bits_delivered, params.payload_bits);
}

TEST(RtsCts, HiddenPairProtectedFromDataCollisions) {
  // NAV protection is not airtight: a hidden station that was itself
  // transmitting an RTS while the AP's CTS went out misses the reservation
  // and may later hit the data frame (the classic residual RTS/CTS
  // vulnerability window). The window scales with the attempt rate, so at
  // moderate p the DATA loss must be small even though RTS collisions are
  // plentiful.
  auto data_loss_at = [&](double p) {
    const WifiParams params = rts_params();
    Network net(params, hidden_pair_graph(), phy::graph_position(0), 3);
    net.add_station(phy::graph_position(1),
                    std::make_unique<PPersistentStrategy>(p, 1.0, false));
    net.add_station(phy::graph_position(2),
                    std::make_unique<PPersistentStrategy>(p, 1.0, false));
    net.finalize();
    net.start();
    net.run_for(Duration::seconds(2.0));
    EXPECT_GT(net.counters().total_successes(), 100u) << "p=" << p;
    return static_cast<double>(net.ap().data_frames_corrupted()) /
           static_cast<double>(net.ap().data_frames_received() + 1);
  };
  EXPECT_LT(data_loss_at(0.05), 0.08);
  // The vulnerability window grows with aggressiveness.
  EXPECT_LT(data_loss_at(0.05), data_loss_at(0.3));
}

TEST(RtsCts, BeatsBasicAccessOnAggressiveHiddenPair) {
  // Same hidden pair, aggressive p: basic access loses most data frames to
  // hidden collisions; RTS/CTS converts them into cheap RTS collisions.
  auto run = [](bool rts) {
    WifiParams params;
    if (rts) params.rts_threshold_bits = 0;
    Network net(params, hidden_pair_graph(), phy::graph_position(0), 3);
    for (int i = 1; i <= 2; ++i)
      net.add_station(phy::graph_position(static_cast<std::size_t>(i)),
                      std::make_unique<PPersistentStrategy>(0.2, 1.0, false));
    net.finalize();
    net.start();
    net.run_for(Duration::seconds(2.0));
    return net.total_mbps();
  };
  EXPECT_GT(run(true), 1.5 * run(false));
}

TEST(RtsCts, OverheadCostsThroughputWhenConnected) {
  // Section I's argument AGAINST always-on RTS/CTS: control frames at
  // 6 Mb/s are expensive next to 54 Mb/s data. In a well-tuned connected
  // network, basic access outperforms RTS/CTS.
  auto run = [](bool rts) {
    WifiParams params;
    if (rts) params.rts_threshold_bits = 0;
    Network net(params, everyone_connected(), {0, 0}, 5);
    for (int i = 0; i < 10; ++i)
      net.add_station({static_cast<double>(i + 1), 0},
                      std::make_unique<PPersistentStrategy>(
                          0.028, 1.0, false));  // near-optimal p for n=10
    net.finalize();
    net.start();
    net.run_for(Duration::seconds(3.0));
    return net.total_mbps();
  };
  const double basic = run(false);
  const double rtscts = run(true);
  EXPECT_GT(basic, rtscts * 1.10);
}

TEST(RtsCts, NavDefersThirdStation) {
  // Three connected stations; station 2 and 3 are p = 0 (never contend on
  // their own) — wait, they must contend to test NAV... instead: two
  // contenders and verify no data frame is ever hit by the third party
  // while NAV reserves the channel. Use three active stations at moderate
  // p: with RTS/CTS in a CONNECTED network, data corruption at the AP must
  // be zero (everyone hears every RTS/CTS and defers).
  const WifiParams params = rts_params();
  Network net(params, everyone_connected(), {0, 0}, 9);
  for (int i = 0; i < 3; ++i)
    net.add_station({static_cast<double>(i + 1), 0},
                    std::make_unique<PPersistentStrategy>(0.15, 1.0, false));
  net.finalize();
  net.start();
  net.run_for(Duration::seconds(2.0));
  EXPECT_EQ(net.ap().data_frames_corrupted(), 0u);
  EXPECT_GT(net.counters().total_successes(), 1000u);
}

TEST(RtsCts, WorksWithToraController) {
  // Adaptive TORA over RTS/CTS access: converges and delivers.
  auto scenario = exp::ScenarioConfig::hidden(10, 16.0, 2);
  scenario.phy.rts_threshold_bits = 0;
  exp::RunOptions opts;
  opts.warmup = sim::Duration::seconds(10.0);
  opts.measure = sim::Duration::seconds(5.0);
  const auto r = exp::run_scenario(scenario, exp::SchemeConfig::tora_csma(),
                                   opts);
  EXPECT_GT(r.total_mbps, 10.0);
}

}  // namespace
