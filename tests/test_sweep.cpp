// Tests of the declarative sweep engine: grid expansion order, param
// binding, result indexing, and the core guarantee that a parallel
// run_sweep is bit-identical to the serial seed loop it replaced.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "exp/sweep.hpp"
#include "par/thread_pool.hpp"

namespace {

using namespace wlan;
using namespace wlan::exp;

RunOptions quick_options() {
  RunOptions opts;
  opts.warmup = sim::Duration::seconds(0.2);
  opts.measure = sim::Duration::seconds(1.0);
  return opts;
}

TEST(Sweep, ExpandIsRowMajorWithSeedsInnermost) {
  SweepSpec spec;
  spec.scenarios = {ScenarioConfig::connected(5, 10),
                    ScenarioConfig::connected(7, 20)};
  spec.schemes = {SchemeConfig::standard(),
                  SchemeConfig::fixed_p_persistent(0.05)};
  spec.params = {0.1, 0.2, 0.3};
  spec.bind = [](double, ScenarioConfig&, SchemeConfig&) {};
  spec.seeds = 2;
  const auto jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 2u * 2u * 3u * 2u);

  // Seeds vary fastest: consecutive jobs share a point index.
  EXPECT_EQ(jobs[0].point_index, 0u);
  EXPECT_EQ(jobs[0].seed_index, 0);
  EXPECT_EQ(jobs[0].scenario.seed, 10u);
  EXPECT_EQ(jobs[1].point_index, 0u);
  EXPECT_EQ(jobs[1].seed_index, 1);
  EXPECT_EQ(jobs[1].scenario.seed, 11u);
  // Then params, then schemes, then scenarios (row-major).
  EXPECT_EQ(jobs[2].point_index, 1u);
  EXPECT_EQ(jobs[6].scheme.kind, SchemeKind::kFixedPPersistent);
  const auto& last = jobs.back();
  EXPECT_EQ(last.point_index, 11u);
  EXPECT_EQ(last.scenario.num_stations, 7);
  EXPECT_EQ(last.scenario.seed, 21u);
}

TEST(Sweep, BindAppliesTheParamAxis) {
  SweepSpec spec;
  spec.scenarios = {ScenarioConfig::connected(5, 1)};
  spec.schemes = {SchemeConfig::standard()};
  spec.params = {0.01, 0.04};
  spec.bind = [](double p, ScenarioConfig&, SchemeConfig& sch) {
    sch = SchemeConfig::fixed_p_persistent(p);
  };
  const auto jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].scheme.kind, SchemeKind::kFixedPPersistent);
  EXPECT_DOUBLE_EQ(jobs[0].scheme.fixed_p, 0.01);
  EXPECT_DOUBLE_EQ(jobs[1].scheme.fixed_p, 0.04);
}

TEST(Sweep, RejectsIllFormedSpecs) {
  SweepSpec spec;
  EXPECT_THROW(expand(spec), std::invalid_argument);  // no scenarios
  spec.scenarios = {ScenarioConfig::connected(5, 1)};
  EXPECT_THROW(expand(spec), std::invalid_argument);  // no schemes
  spec.schemes = {SchemeConfig::standard()};
  spec.seeds = 0;
  EXPECT_THROW(expand(spec), std::invalid_argument);  // seeds < 1
  spec.seeds = 1;
  spec.params = {0.5};
  EXPECT_THROW(expand(spec), std::invalid_argument);  // params without bind
}

TEST(Sweep, ParallelResultBitIdenticalToSerialSeedLoop) {
  const auto scenario = ScenarioConfig::hidden(8, 16.0, 1);
  const auto scheme = SchemeConfig::standard();
  const auto opts = quick_options();
  const int seeds = 3;

  // The historical serial loop: run each seed in order, fold by hand.
  double sum = 0.0, idle_sum = 0.0, hidden_sum = 0.0, lo = 0.0, hi = 0.0;
  for (int s = 0; s < seeds; ++s) {
    ScenarioConfig sc = scenario;
    sc.seed = scenario.seed + static_cast<std::uint64_t>(s);
    const RunResult r = run_scenario(sc, scheme, opts);
    sum += r.total_mbps;
    idle_sum += r.ap_avg_idle_slots;
    hidden_sum += static_cast<double>(r.hidden_pairs);
    if (s == 0) {
      lo = hi = r.total_mbps;
    } else {
      lo = std::min(lo, r.total_mbps);
      hi = std::max(hi, r.total_mbps);
    }
  }

  SweepSpec spec = SweepSpec::single(scenario, scheme, opts, seeds);
  for (const int threads : {1, 2, 4}) {
    par::ThreadPool pool(threads);
    const SweepResult result = run_sweep(spec, &pool);
    const AveragedResult& avg = result.points[0].averaged;
    // Exact equality, not near-equality: the parallel fold must follow
    // the identical operation order.
    EXPECT_EQ(avg.mean_mbps, sum / seeds) << "threads=" << threads;
    EXPECT_EQ(avg.min_mbps, lo) << "threads=" << threads;
    EXPECT_EQ(avg.max_mbps, hi) << "threads=" << threads;
    EXPECT_EQ(avg.mean_idle_slots, idle_sum / seeds) << "threads=" << threads;
    EXPECT_EQ(avg.mean_hidden_pairs, hidden_sum / seeds)
        << "threads=" << threads;
    // Per-seed runs come back in seed order.
    ASSERT_EQ(result.points[0].runs.size(), static_cast<std::size_t>(seeds));
  }
}

TEST(Sweep, RunAveragedMatchesItsOwnSerialDefinition) {
  const auto scenario = ScenarioConfig::connected(5, 42);
  const auto scheme = SchemeConfig::fixed_p_persistent(0.05);
  const auto opts = quick_options();

  double sum = 0.0;
  for (int s = 0; s < 2; ++s) {
    ScenarioConfig sc = scenario;
    sc.seed = scenario.seed + static_cast<std::uint64_t>(s);
    sum += run_scenario(sc, scheme, opts).total_mbps;
  }
  const AveragedResult avg = run_averaged(scenario, scheme, 2, opts);
  EXPECT_EQ(avg.mean_mbps, sum / 2);
}

TEST(Sweep, AtIndexesTheGridRowMajor) {
  SweepSpec spec;
  spec.scenarios = {ScenarioConfig::connected(3, 1),
                    ScenarioConfig::connected(4, 1)};
  spec.schemes = {SchemeConfig::standard(),
                  SchemeConfig::fixed_p_persistent(0.05)};
  spec.params = {0.1, 0.9};
  spec.bind = [](double, ScenarioConfig&, SchemeConfig&) {};
  spec.options = quick_options();
  spec.options.measure = sim::Duration::seconds(0.2);
  spec.keep_runs = false;
  par::ThreadPool pool(2);
  const SweepResult result = run_sweep(spec, &pool);
  ASSERT_EQ(result.points.size(), 8u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      for (std::size_t k = 0; k < 2; ++k) {
        const SweepPoint& pt = result.at(i, j, k);
        EXPECT_EQ(pt.scenario_index, i);
        EXPECT_EQ(pt.scheme_index, j);
        EXPECT_EQ(pt.param_index, k);
        EXPECT_DOUBLE_EQ(pt.param, spec.params[k]);
        EXPECT_TRUE(pt.runs.empty());  // keep_runs = false
      }
  EXPECT_THROW(result.at(2, 0, 0), std::out_of_range);
  EXPECT_THROW(result.at(0, 2, 0), std::out_of_range);
  EXPECT_THROW(result.at(0, 0, 2), std::out_of_range);
}

TEST(Sweep, PointWithoutParamsAxisReportsNaNParam) {
  SweepSpec spec = SweepSpec::single(ScenarioConfig::connected(3, 1),
                                     SchemeConfig::standard());
  spec.options.warmup = sim::Duration::zero();
  spec.options.measure = sim::Duration::seconds(0.2);
  const SweepResult result = run_sweep(spec);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_TRUE(std::isnan(result.points[0].param));
  ASSERT_EQ(result.points[0].runs.size(), 1u);
  EXPECT_GT(result.points[0].runs[0].total_mbps, 0.0);
}

TEST(Sweep, ExceptionInsideAJobIsCapturedAsAJobError) {
  SweepSpec spec;
  spec.scenarios = {ScenarioConfig::connected(3, 1)};
  spec.schemes = {SchemeConfig::standard()};
  spec.params = {0.5};
  // Binding to an invalid station count makes the job itself throw.
  spec.bind = [](double, ScenarioConfig& sc, SchemeConfig&) {
    sc.num_stations = -1;
  };
  spec.options = quick_options();
  spec.job_retries = 1;
  spec.job_backoff_ms = 0;
  par::ThreadPool pool(2);
  // The job guard captures the failure instead of aborting the sweep:
  // run_sweep returns, the point folds as zeros, and the structured error
  // names the job.
  const SweepResult result = run_sweep(spec, &pool);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.errors.size(), 1u);
  const JobError& e = result.errors[0];
  EXPECT_EQ(e.job_index, 0u);
  EXPECT_EQ(e.point_index, 0u);
  EXPECT_EQ(e.seed_index, 0);
  EXPECT_EQ(e.kind, JobError::Kind::kException);
  EXPECT_EQ(e.attempts, 2);  // 1 + job_retries
  EXPECT_FALSE(e.what.empty());
  EXPECT_DOUBLE_EQ(result.points[0].averaged.mean_mbps, 0.0);
  // Callers that need the historical abort semantics opt back in.
  EXPECT_THROW(result.throw_if_failed(), std::runtime_error);
}

TEST(Sweep, FailedJobDoesNotPoisonTheOtherJobs) {
  SweepSpec spec;
  spec.scenarios = {ScenarioConfig::connected(3, 1)};
  spec.schemes = {SchemeConfig::standard()};
  spec.params = {0.1, 0.2};
  // Only the second param point is sick.
  spec.bind = [](double v, ScenarioConfig& sc, SchemeConfig&) {
    if (v > 0.15) sc.num_stations = -1;
  };
  spec.options = quick_options();
  spec.job_retries = 0;
  spec.job_backoff_ms = 0;
  par::ThreadPool pool(2);
  const SweepResult result = run_sweep(spec, &pool);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0].point_index, 1u);
  EXPECT_GT(result.at(0, 0, 0).averaged.mean_mbps, 0.0);
  EXPECT_DOUBLE_EQ(result.at(0, 0, 1).averaged.mean_mbps, 0.0);
}

}  // namespace
