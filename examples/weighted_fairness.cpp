// Weighted fairness with wTOP-CSMA: stations pick weights independently
// (no AP coordination, Lemma 1 / Table II) and the allocation tracks them.
//
// Also demonstrates a mid-run weight change: station 0 raises its weight
// from 1 to 5 halfway through, and its share follows.
//
//   ./weighted_fairness [--nodes 8] [--seconds 60] [--seed 1]
#include <cstdio>
#include <iostream>

#include "exp/runner.hpp"
#include "mac/access_strategy.hpp"
#include "stats/fairness.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wlan;

  util::Cli cli(argc, argv);
  const int nodes = static_cast<int>(cli.get_int("nodes", 8));
  const double seconds = cli.get_double("seconds", 60.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  // Phase 1: weights 1,2,...  (each station just knows its own weight).
  auto scheme = exp::SchemeConfig::wtop_csma();
  for (int i = 0; i < nodes; ++i)
    scheme.weights.push_back(1.0 + i % 3);  // weights 1,2,3,1,2,3,...

  std::printf("Phase 1: stations with weights 1,2,3,1,2,3,... under "
              "wTOP-CSMA\n\n");
  exp::RunOptions opts;
  opts.warmup = sim::Duration::seconds(seconds * 0.4);
  opts.measure = sim::Duration::seconds(seconds * 0.6);
  const auto result = exp::run_scenario(
      exp::ScenarioConfig::connected(nodes, seed), scheme, opts);

  util::Table table({"Station", "Weight", "Mb/s", "Mb/s per weight"});
  const auto norm =
      stats::normalized_throughput(result.per_station_mbps, scheme.weights);
  for (int i = 0; i < nodes; ++i) {
    table.add_row(std::to_string(i),
                  {scheme.weights[static_cast<std::size_t>(i)],
                   result.per_station_mbps[static_cast<std::size_t>(i)],
                   norm[static_cast<std::size_t>(i)]});
  }
  table.print(std::cout);
  std::printf("\nWeighted Jain index: %.4f   total: %.2f Mb/s\n\n",
              stats::weighted_jain_index(result.per_station_mbps,
                                         scheme.weights),
              result.total_mbps);

  // Phase 2: dynamic weight change in a LIVE network. The weight lives
  // entirely in the station's own strategy object; nothing else is told.
  std::printf("Phase 2: station 0 raises its weight 1 -> 5 mid-run "
              "(nobody else is told)\n\n");
  auto eq_scheme = exp::SchemeConfig::wtop_csma();  // all weights 1
  auto net = exp::build_network(exp::ScenarioConfig::connected(nodes, seed),
                                eq_scheme);
  net->start();
  net->run_for(sim::Duration::seconds(seconds * 0.5));  // converge
  net->reset_counters();
  net->run_for(sim::Duration::seconds(seconds * 0.25));
  const auto before = net->counters().per_node_mbps(net->measured_duration());

  static_cast<mac::PPersistentStrategy&>(net->station(0).strategy())
      .set_weight(5.0);
  net->run_for(sim::Duration::seconds(seconds * 0.25));  // settle
  net->reset_counters();
  net->run_for(sim::Duration::seconds(seconds * 0.5));
  const auto after = net->counters().per_node_mbps(net->measured_duration());

  std::printf("Station 0 share before: %.2f Mb/s (weight 1) -> after: %.2f "
              "Mb/s (weight 5)\n",
              before[0], after[0]);
  std::printf("Other stations: ~%.2f Mb/s each; total stays ~%.1f Mb/s.\n",
              after[1], net->total_mbps());
  return 0;
}
