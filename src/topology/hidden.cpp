#include "topology/hidden.hpp"

namespace wlan::topology {

HiddenReport analyze_hidden(const Layout& layout,
                            const phy::PropagationModel& propagation) {
  const int n = static_cast<int>(layout.stations.size());
  HiddenReport report;
  report.hidden_degree.assign(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const bool ij = propagation.can_sense(layout.stations[i],
                                            layout.stations[j]);
      const bool ji = propagation.can_sense(layout.stations[j],
                                            layout.stations[i]);
      if (!ij || !ji) {
        report.hidden_pairs.emplace_back(i, j);
        ++report.hidden_degree[static_cast<std::size_t>(i)];
        ++report.hidden_degree[static_cast<std::size_t>(j)];
      }
    }
  }
  report.fully_connected = report.hidden_pairs.empty();
  return report;
}

std::size_t count_hidden_pairs(const Layout& layout,
                               const phy::PropagationModel& propagation) {
  return analyze_hidden(layout, propagation).hidden_pairs.size();
}

std::vector<std::vector<bool>> sensing_matrix(
    const Layout& layout, const phy::PropagationModel& propagation) {
  const std::size_t n = layout.stations.size();
  std::vector<std::vector<bool>> m(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i != j)
        m[i][j] =
            propagation.can_sense(layout.stations[i], layout.stations[j]);
  return m;
}

}  // namespace wlan::topology
