// Tests for the observability layer (src/obs/): ring-buffer semantics,
// Chrome-JSON export, metrics round-trip, trace diffing, and — the
// acceptance bar for the whole subsystem — that attaching a trace to a run
// changes NOTHING about the simulation (bit-identical series hashes,
// traced vs untraced, across topologies and schemes).
//
// Test names are prefixed Obs* so the CI TSan job can select them: the
// sweep test below forces per-simulator trace bundles on under the thread
// pool, which is exactly the sharing pattern TSan should vet.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "obs/category.hpp"
#include "obs/collect.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_diff.hpp"
#include "obs/trace_export.hpp"
#include "par/thread_pool.hpp"
#include "util/fnv.hpp"

namespace {

using namespace wlan;
using exp::ScenarioConfig;
using exp::SchemeConfig;

obs::TraceRecord rec(std::int64_t t, obs::Category c, std::uint16_t event,
                     std::uint32_t node, std::uint64_t a = 0,
                     std::uint64_t b = 0) {
  return obs::TraceRecord{t, static_cast<std::uint16_t>(c), event, node, a, b};
}

// ---------------------------------------------------------------- recorder

TEST(ObsTrace, RingGrowsOnDemandThenWrapsOldestFirst) {
  obs::TraceRecorder ring(obs::kAllCategories, /*capacity=*/8);
  for (std::int64_t i = 0; i < 5; ++i)
    ring.push(rec(i, obs::kCatSim, obs::ev::kDispatch, 0, static_cast<std::uint64_t>(i)));
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (std::size_t i = 0; i < snap.size(); ++i)
    EXPECT_EQ(snap[i].time_ns, static_cast<std::int64_t>(i));

  // Push past capacity: the oldest records are overwritten and counted.
  for (std::int64_t i = 5; i < 12; ++i)
    ring.push(rec(i, obs::kCatSim, obs::ev::kDispatch, 0));
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.dropped(), 4u);
  snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  // Survivors are the last 8 pushes, still oldest-first.
  for (std::size_t i = 0; i < snap.size(); ++i)
    EXPECT_EQ(snap[i].time_ns, static_cast<std::int64_t>(i + 4));
}

TEST(ObsTrace, WrapExactlyAtCapacityBoundary) {
  obs::TraceRecorder ring(obs::kAllCategories, 4);
  for (std::int64_t i = 0; i < 4; ++i)
    ring.push(rec(i, obs::kCatSim, obs::ev::kDispatch, 0));
  EXPECT_EQ(ring.dropped(), 0u);
  ring.push(rec(4, obs::kCatSim, obs::ev::kDispatch, 0));
  EXPECT_EQ(ring.dropped(), 1u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().time_ns, 1);
  EXPECT_EQ(snap.back().time_ns, 4);
}

TEST(ObsTrace, MaskGatesRecordingButNotProfilerAttribution) {
  obs::SimObs o(obs::category_bit(obs::kCatMedium), 16);
  o.profiler.enable();
  o.profiler.begin_event();
  o.point(10, obs::kCatStation, obs::ev::kStateChange, 1, 0, 1);  // masked out
  o.point(10, obs::kCatMedium, obs::ev::kTxStart, 1, 0, 0);       // recorded
  o.profiler.end_event(7);
  EXPECT_EQ(o.trace.size(), 1u);
  EXPECT_EQ(o.trace.snapshot()[0].event, obs::ev::kTxStart);
  // The FIRST point claimed the attribution even though it was masked.
  EXPECT_EQ(o.profiler.events(obs::kCatStation), 1u);
  EXPECT_EQ(o.profiler.events(obs::kCatMedium), 0u);
  EXPECT_EQ(o.profiler.wall_ns(obs::kCatStation), 7);
}

TEST(ObsTrace, PackFrameDetailKeepsFieldsSeparate) {
  const std::uint64_t d = obs::pack_frame_detail(/*kind=*/3, /*dst=*/0x12345,
                                                 /*seq=*/0x9876543210ull);
  EXPECT_EQ(d >> 60, 3u);
  EXPECT_EQ((d >> 40) & 0xFFFFFu, 0x12345u);
  EXPECT_EQ(d & 0xFFFFFFFFFFull, 0x9876543210ull);
}

TEST(ObsTrace, ParseCategoriesBuildsMasks) {
  EXPECT_EQ(obs::parse_categories(""), obs::kAllCategories);
  EXPECT_EQ(obs::parse_categories("medium"),
            obs::category_bit(obs::kCatMedium));
  EXPECT_EQ(obs::parse_categories("medium,station"),
            obs::category_bit(obs::kCatMedium) |
                obs::category_bit(obs::kCatStation));
}

// ---------------------------------------------------------------- profiler

TEST(ObsProfiler, FirstStampWinsAndUnstampedEventsLandInOther) {
  obs::PhaseProfiler p;
  p.enable();
  p.begin_event();
  p.stamp(obs::kCatMedium);
  p.stamp(obs::kCatCohort);  // ignored: attribution already claimed
  p.end_event(100);
  p.begin_event();
  p.end_event(50);  // no stamp -> kCatOther
  EXPECT_EQ(p.events(obs::kCatMedium), 1u);
  EXPECT_EQ(p.events(obs::kCatCohort), 0u);
  EXPECT_EQ(p.events(obs::kCatOther), 1u);
  EXPECT_EQ(p.wall_ns(obs::kCatMedium), 100);
  EXPECT_EQ(p.total_events(), 2u);
  EXPECT_EQ(p.total_wall_ns(), 150);
  const std::string report = p.report("unit");
  EXPECT_NE(report.find("unit"), std::string::npos);
  EXPECT_NE(report.find("medium"), std::string::npos);
}

TEST(ObsProfiler, AddAndAddBucketAggregate) {
  obs::PhaseProfiler a, b;
  a.add_bucket(obs::kCatSim, 10, 1000);
  b.add_bucket(obs::kCatSim, 5, 500);
  b.add_bucket(obs::kCatMedium, 1, 10);
  a.add(b);
  EXPECT_EQ(a.events(obs::kCatSim), 15u);
  EXPECT_EQ(a.wall_ns(obs::kCatSim), 1500);
  EXPECT_EQ(a.events(obs::kCatMedium), 1u);
}

// ----------------------------------------------------------------- metrics

TEST(ObsMetrics, JsonRoundTripIsExact) {
  obs::MetricsRegistry reg;
  reg.set_count("sim.events_executed", 123456789ull);
  reg.set_count("medium.tx_started", 0);
  reg.set("ratio.fractional", 0.1);  // not representable in binary
  reg.set("value.negative", -42.5);
  reg.set("value.huge", 9.8765432109876543e300);
  reg.set_count("count.big", (1ull << 53) - 1);

  const std::string json = reg.to_json();
  obs::MetricsRegistry back;
  ASSERT_TRUE(obs::MetricsRegistry::parse_json(json, back));
  EXPECT_EQ(reg, back);  // bit-equal doubles, same order
}

TEST(ObsMetrics, FileRoundTrip) {
  obs::MetricsRegistry reg;
  reg.set_count("a.b", 7);
  reg.set("c.d", 2.5);
  const std::string path = testing::TempDir() + "obs_metrics_roundtrip.json";
  ASSERT_TRUE(obs::write_metrics_file(reg, path));
  obs::MetricsRegistry back;
  ASSERT_TRUE(obs::read_metrics_file(path, back));
  EXPECT_EQ(reg, back);
  std::remove(path.c_str());
}

TEST(ObsMetrics, SetOverwritesInPlacePreservingOrder) {
  obs::MetricsRegistry reg;
  reg.set("first", 1);
  reg.set("second", 2);
  reg.set("first", 10);
  ASSERT_EQ(reg.entries().size(), 2u);
  EXPECT_EQ(reg.entries()[0].name, "first");
  EXPECT_EQ(reg.entries()[0].value, 10.0);
  EXPECT_EQ(reg.get("second"), 2.0);
  EXPECT_FALSE(reg.contains("third"));
  EXPECT_EQ(reg.get("third", -1.0), -1.0);
}

TEST(ObsMetrics, ParseRejectsMalformedInput) {
  obs::MetricsRegistry out;
  EXPECT_FALSE(obs::MetricsRegistry::parse_json("not json", out));
  EXPECT_FALSE(obs::MetricsRegistry::parse_json("{\"a\" 1}", out));
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(obs::MetricsRegistry::parse_json("{}", out));
  EXPECT_TRUE(out.empty());
}

// -------------------------------------------------------------- trace diff

std::vector<obs::TraceRecord> make_stream(std::size_t n) {
  std::vector<obs::TraceRecord> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    v.push_back(rec(static_cast<std::int64_t>(i * 100), obs::kCatMedium,
                    obs::ev::kTxStart, static_cast<std::uint32_t>(i % 7), i));
  return v;
}

TEST(ObsDiff, PinpointsExactInjectedIndex) {
  const auto a = make_stream(50);
  for (std::size_t k : {0u, 17u, 49u}) {
    auto b = a;
    b[k].b = 999;  // inject a single-field divergence
    const auto d = obs::first_divergence(a, b);
    EXPECT_FALSE(d.identical);
    EXPECT_EQ(d.index, k) << "injected at " << k;
    const std::string report = obs::divergence_report(a, b);
    EXPECT_NE(report.find("record " + std::to_string(k)), std::string::npos)
        << report;
  }
}

TEST(ObsDiff, IdenticalAndPrefixStreams) {
  const auto a = make_stream(20);
  const auto d_same = obs::first_divergence(a, a);
  EXPECT_TRUE(d_same.identical);
  EXPECT_TRUE(obs::divergence_report(a, a).empty());

  auto shorter = a;
  shorter.resize(12);
  const auto d_prefix = obs::first_divergence(a, shorter);
  EXPECT_FALSE(d_prefix.identical);
  EXPECT_EQ(d_prefix.index, 12u);
  EXPECT_NE(obs::divergence_report(a, shorter).find("<end of stream>"),
            std::string::npos);
}

TEST(ObsDiff, FilterCategoriesDropsMaskedRecords) {
  std::vector<obs::TraceRecord> v{
      rec(1, obs::kCatMedium, obs::ev::kTxStart, 0),
      rec(2, obs::kCatMark, obs::ev::kMarkCorrupt, 1),
      rec(3, obs::kCatStation, obs::ev::kStateChange, 2),
  };
  const auto kept = obs::filter_categories(
      v, obs::kAllCategories & ~obs::category_bit(obs::kCatMark));
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].time_ns, 1);
  EXPECT_EQ(kept[1].time_ns, 3);
}

// ------------------------------------------------------------ json export

TEST(ObsExport, ChromeTraceJsonIsWellFormed) {
  std::vector<obs::TraceRecord> v{
      rec(1000, obs::kCatMedium, obs::ev::kTxStart, 3, 42, 5000),
      rec(6000, obs::kCatMedium, obs::ev::kTxEnd, 3, 42),
      rec(6000, obs::kCatStation, obs::ev::kStateChange, 3, 1, 2),
  };
  const std::string json = obs::chrome_trace_json(v);
  // Spot-check the envelope and the async begin/end pairing for tx.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("tx_start"), std::string::npos);
  EXPECT_EQ(json.find("NaN"), std::string::npos);

  const std::string path = testing::TempDir() + "obs_chrome.trace.json";
  ASSERT_TRUE(obs::write_chrome_trace(v, path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  EXPECT_GT(std::ftell(f), 0);
  std::fclose(f);
  std::remove(path.c_str());
}

// ------------------------------------------------- zero-perturbation bar

/// Same series-hash construction as the differential suites.
void hash_series(const stats::TimeSeries& s, util::Fnv1a& h) {
  for (const auto& sample : s.samples()) {
    h.mix_double_word(sample.t_seconds);
    h.mix_double_word(sample.value);
  }
}

std::uint64_t hash_run(const exp::RunResult& r) {
  util::Fnv1a h;
  hash_series(r.throughput_series, h);
  hash_series(r.control_series, h);
  hash_series(r.stage_series, h);
  hash_series(r.active_nodes_series, h);
  h.mix_double_word(r.total_mbps);
  for (double v : r.per_station_mbps) h.mix_double_word(v);
  h.mix_double_word(r.ap_avg_idle_slots);
  h.mix_double_word(static_cast<double>(r.successes));
  h.mix_double_word(static_cast<double>(r.failures));
  h.mix_double_word(r.mean_delay_s);
  h.mix_double_word(r.drop_rate);
  return h.digest();
}

exp::RunOptions series_options(double measure_s = 0.3) {
  exp::RunOptions opts;
  opts.warmup = sim::Duration::seconds(0.1);
  opts.measure = sim::Duration::seconds(measure_s);
  opts.sample_period = sim::Duration::seconds(0.05);
  opts.record_series = true;  // also bypasses the run cache
  return opts;
}

void expect_tracing_changes_nothing(const ScenarioConfig& scenario,
                                    const SchemeConfig& scheme) {
  const exp::RunOptions opts = series_options();
  const auto untraced = exp::run_scenario(scenario, scheme, opts);

  obs::TraceCapture capture;  // all categories, default capacity
  exp::RunOptions traced_opts = opts;
  traced_opts.trace = &capture;
  const auto traced = exp::run_scenario(scenario, scheme, traced_opts);

  EXPECT_EQ(hash_run(untraced), hash_run(traced))
      << scheme.name() << ": tracing must not perturb the simulation";
  EXPECT_EQ(untraced.successes, traced.successes);
  EXPECT_EQ(untraced.per_station_mbps, traced.per_station_mbps);
  // And the capture must actually have observed the run.
  EXPECT_FALSE(capture.records.empty());
}

TEST(ObsIdentity, TracedRunsBitIdenticalConnected) {
  const auto scenario = ScenarioConfig::connected(10, 1);
  for (const auto& scheme :
       {SchemeConfig::standard(), SchemeConfig::wtop_csma(),
        SchemeConfig::tora_csma(), SchemeConfig::idle_sense_scheme()})
    expect_tracing_changes_nothing(scenario, scheme);
}

TEST(ObsIdentity, TracedRunsBitIdenticalHidden) {
  const auto scenario = ScenarioConfig::hidden(8, 16.0, 3);
  for (const auto& scheme :
       {SchemeConfig::standard(), SchemeConfig::wtop_csma(),
        SchemeConfig::tora_csma(), SchemeConfig::idle_sense_scheme()})
    expect_tracing_changes_nothing(scenario, scheme);
}

TEST(ObsIdentity, TracedRunsBitIdenticalShadowed) {
  expect_tracing_changes_nothing(ScenarioConfig::shadowed(6, 0.3, 5),
                                 SchemeConfig::standard());
  expect_tracing_changes_nothing(ScenarioConfig::shadowed(6, 0.3, 5),
                                 SchemeConfig::wtop_csma());
}

TEST(ObsIdentity, TracedRunsBitIdenticalMulticell) {
  const auto scenario = ScenarioConfig::multicell(4, 5, 40.0, 1);
  for (const auto& scheme :
       {SchemeConfig::standard(), SchemeConfig::wtop_csma()})
    expect_tracing_changes_nothing(scenario, scheme);
}

TEST(ObsIdentity, TracedRunsBitIdenticalWithTraffic) {
  auto scenario = ScenarioConfig::connected(8, 2);
  scenario.traffic = traffic::TrafficConfig::poisson(1.0);
  expect_tracing_changes_nothing(scenario, SchemeConfig::standard());
}

TEST(ObsIdentity, TracedDynamicRunBitIdentical) {
  const auto scenario = ScenarioConfig::connected(10, 1);
  const std::vector<exp::PopulationStep> schedule{
      {0.0, 10}, {0.2, 3}, {0.4, 8}};
  const auto total = sim::Duration::seconds(0.8);
  const auto sample = sim::Duration::seconds(0.05);
  const auto untraced = exp::run_dynamic(scenario, SchemeConfig::wtop_csma(),
                                         schedule, total, sample);
  obs::TraceCapture capture;
  const auto traced = exp::run_dynamic(scenario, SchemeConfig::wtop_csma(),
                                       schedule, total, sample, &capture);
  EXPECT_EQ(hash_run(untraced), hash_run(traced));
  EXPECT_FALSE(capture.records.empty());
}

TEST(ObsIdentity, CapturedTraceIsDeterministicAcrossRepeats) {
  const auto scenario = ScenarioConfig::hidden(8, 16.0, 3);
  obs::TraceCapture a, b;
  exp::RunOptions opts = series_options();
  opts.trace = &a;
  exp::run_scenario(scenario, SchemeConfig::standard(), opts);
  opts.trace = &b;
  exp::run_scenario(scenario, SchemeConfig::standard(), opts);
  const auto d = obs::first_divergence(a.records, b.records);
  EXPECT_TRUE(d.identical) << obs::divergence_report(a.records, b.records);
  EXPECT_EQ(a.dropped, b.dropped);
}

// --------------------------------------------------------- TSan coverage

/// Restores the process-wide trace override on scope exit.
struct TraceOverrideGuard {
  explicit TraceOverrideGuard(int v) { obs::SimObs::set_trace_override(v); }
  ~TraceOverrideGuard() { obs::SimObs::set_trace_override(-1); }
};

TEST(ObsSweepTraced, ForcedTracingUnderThreadPoolStaysBitIdentical) {
  // Every simulator in the sweep gets its own private bundle (forced on by
  // the override); lanes must never share observer state. Run under TSan
  // in CI — and as a plain identity check everywhere else.
  exp::SweepSpec spec;
  spec.scenarios = {ScenarioConfig::connected(6, 1),
                    ScenarioConfig::hidden(6, 16.0, 2)};
  spec.schemes = {SchemeConfig::standard(), SchemeConfig::wtop_csma()};
  spec.seeds = 3;
  spec.options.warmup = sim::Duration::seconds(0.05);
  spec.options.measure = sim::Duration::seconds(0.2);

  par::ThreadPool pool(4);
  exp::SweepResult untraced = exp::run_sweep(spec, &pool);
  exp::SweepResult traced;
  {
    TraceOverrideGuard guard(1);
    traced = exp::run_sweep(spec, &pool);
  }
  ASSERT_EQ(untraced.points.size(), traced.points.size());
  for (std::size_t i = 0; i < untraced.points.size(); ++i) {
    EXPECT_EQ(untraced.points[i].averaged.mean_mbps,
              traced.points[i].averaged.mean_mbps)
        << "point " << i;
    EXPECT_EQ(untraced.points[i].averaged.mean_idle_slots,
              traced.points[i].averaged.mean_idle_slots)
        << "point " << i;
  }
}

// ---------------------------------------------- sweep-fold determinism

/// Restores the process-wide flight override on scope exit.
struct FlightOverrideGuard {
  explicit FlightOverrideGuard(int v) { obs::SimObs::set_flight_override(v); }
  ~FlightOverrideGuard() { obs::SimObs::set_flight_override(-1); }
};

TEST(ObsSweepMetrics, FoldedMetricsExactlyEqualAtAnyThreadCount) {
  // The sweep-level metrics fold runs serially in job-index order after
  // the barrier, so its totals — including the folded flight.* spans —
  // must be EXACTLY equal (bit-equal doubles) at 1 and 4 lanes.
  FlightOverrideGuard flight(1);
  exp::SweepSpec spec;
  spec.scenarios = {ScenarioConfig::connected(5, 1),
                    ScenarioConfig::hidden(5, 16.0, 2)};
  spec.schemes = {SchemeConfig::standard(), SchemeConfig::wtop_csma()};
  spec.seeds = 2;
  spec.options.warmup = sim::Duration::seconds(0.05);
  spec.options.measure = sim::Duration::seconds(0.2);

  par::ThreadPool serial(1), wide(4);
  const exp::SweepResult a = exp::run_sweep(spec, &serial);
  const exp::SweepResult b = exp::run_sweep(spec, &wide);

  // The flight fold actually observed the runs.
  EXPECT_GT(a.metrics.get("flight.frames_completed", 0.0), 0.0);
  EXPECT_GT(a.metrics.get("flight.attempts_per_success", 0.0), 0.0);
  // Same names, same values, same order — modulo the process-cumulative
  // families, which are snapshots and legitimately advance between calls.
  std::size_t compared = 0;
  for (const auto& [name, value] : a.metrics.entries()) {
    if (obs::is_process_cumulative_metric(name)) continue;
    EXPECT_EQ(b.metrics.get(name, -1.0), value) << name;
    ++compared;
  }
  EXPECT_GT(compared, 8u);
}

}  // namespace
