// Unit tests for the event queue: ordering, tie-breaks, cancellation.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using wlan::sim::EventId;
using wlan::sim::EventQueue;
using wlan::sim::Time;

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Time::from_ns(30), [&] { order.push_back(3); });
  q.schedule(Time::from_ns(10), [&] { order.push_back(1); });
  q.schedule(Time::from_ns(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.schedule(Time::from_ns(5), [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().callback();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, PopReportsScheduledTime) {
  EventQueue q;
  q.schedule(Time::from_ns(77), [] {});
  auto fired = q.pop();
  EXPECT_EQ(fired.time.ns(), 77);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventId id = q.schedule(Time::from_ns(1), [&] { ran = true; });
  q.schedule(Time::from_ns(2), [] {});
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().callback();
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelNullHandleIsNoop) {
  EventQueue q;
  q.schedule(Time::from_ns(1), [] {});
  q.cancel(EventId{});
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, DoubleCancelIsNoop) {
  EventQueue q;
  EventId id = q.schedule(Time::from_ns(1), [] {});
  q.schedule(Time::from_ns(2), [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelAllLeavesEmpty) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 5; ++i)
    ids.push_back(q.schedule(Time::from_ns(i), [] {}));
  for (auto id : ids) q.cancel(id);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  EventId early = q.schedule(Time::from_ns(1), [] {});
  q.schedule(Time::from_ns(9), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time().ns(), 9);
}

TEST(EventQueue, ClearRemovesEverything) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule(Time::from_ns(i), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  // Still usable afterwards.
  q.schedule(Time::from_ns(1), [] {});
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, StaleCancelAfterFireIsNoop) {
  // Regression: cancelling a handle whose event already FIRED must not
  // disturb the queue's accounting. An earlier implementation decremented
  // a live-event counter on any first-time cancel, so components holding
  // stale handles (e.g. a station cancelling an old NAV timer on every
  // busy transition) could convince the queue it was empty while events
  // remained — silently freezing whole simulations.
  EventQueue q;
  EventId fired = q.schedule(Time::from_ns(1), [] {});
  q.schedule(Time::from_ns(2), [] {});
  q.pop().callback();  // fires event 1
  EXPECT_EQ(q.size(), 1u);
  q.cancel(fired);  // stale handle
  q.cancel(fired);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.next_time().ns(), 2);
}

TEST(EventQueue, CancelledThenStaleCancelKeepsOthersLive) {
  EventQueue q;
  EventId a = q.schedule(Time::from_ns(1), [] {});
  q.schedule(Time::from_ns(2), [] {});
  q.schedule(Time::from_ns(3), [] {});
  q.cancel(a);
  q.cancel(a);  // double cancel
  EXPECT_EQ(q.size(), 2u);
  q.pop();      // fires event 2
  q.cancel(a);  // still a no-op
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  // Deterministic pseudo-random times; verify global ordering on pop.
  std::uint64_t x = 12345;
  for (int i = 0; i < 10000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    q.schedule(Time::from_ns(static_cast<std::int64_t>(x % 1000000)), [] {});
  }
  Time last = Time::zero();
  while (!q.empty()) {
    auto fired = q.pop();
    EXPECT_GE(fired.time, last);
    last = fired.time;
  }
}

}  // namespace
