#include "stats/fairness.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wlan::stats {

double jain_index(const std::vector<double>& x) {
  if (x.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (double v : x) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(x.size()) * sum_sq);
}

std::vector<double> normalized_throughput(const std::vector<double>& x,
                                          const std::vector<double>& weights) {
  if (x.size() != weights.size())
    throw std::invalid_argument("normalized_throughput: size mismatch");
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (weights[i] <= 0.0)
      throw std::invalid_argument("normalized_throughput: weight <= 0");
    out[i] = x[i] / weights[i];
  }
  return out;
}

double weighted_jain_index(const std::vector<double>& x,
                           const std::vector<double>& weights) {
  return jain_index(normalized_throughput(x, weights));
}

double max_normalized_deviation(const std::vector<double>& x,
                                const std::vector<double>& weights) {
  const auto norm = normalized_throughput(x, weights);
  if (norm.empty()) return 0.0;
  double mean = 0.0;
  for (double v : norm) mean += v;
  mean /= static_cast<double>(norm.size());
  if (mean == 0.0) return 0.0;
  double worst = 0.0;
  for (double v : norm) worst = std::max(worst, std::abs(v - mean) / mean);
  return worst;
}

double sliding_window_jain(const std::vector<int>& sources, int num_stations,
                           std::size_t window, std::size_t stride) {
  if (num_stations <= 0)
    throw std::invalid_argument("sliding_window_jain: num_stations <= 0");
  if (window == 0 || stride == 0)
    throw std::invalid_argument("sliding_window_jain: zero window/stride");
  if (sources.size() < window) return 1.0;

  std::vector<double> counts(static_cast<std::size_t>(num_stations), 0.0);
  double jain_sum = 0.0;
  std::size_t windows = 0;
  for (std::size_t start = 0; start + window <= sources.size();
       start += stride) {
    std::fill(counts.begin(), counts.end(), 0.0);
    for (std::size_t k = start; k < start + window; ++k) {
      const int s = sources[k];
      if (s < 0 || s >= num_stations)
        throw std::invalid_argument("sliding_window_jain: bad station index");
      counts[static_cast<std::size_t>(s)] += 1.0;
    }
    jain_sum += jain_index(counts);
    ++windows;
  }
  return jain_sum / static_cast<double>(windows);
}

}  // namespace wlan::stats
