// Quickstart: build a 10-station fully connected WLAN, run wTOP-CSMA, and
// compare the converged throughput against (a) standard 802.11 and (b) the
// analytical optimum of Theorem 2.
//
//   ./quickstart [--nodes 10] [--seconds 30] [--seed 1]
#include <cstdio>

#include "analysis/ppersistent.hpp"
#include "exp/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace wlan;

  util::Cli cli(argc, argv);
  const int nodes = static_cast<int>(cli.get_int("nodes", 10));
  const double seconds = cli.get_double("seconds", 30.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  const auto scenario = exp::ScenarioConfig::connected(nodes, seed);

  exp::RunOptions opts;
  opts.warmup = sim::Duration::seconds(seconds * 0.5);  // let KW converge
  opts.measure = sim::Duration::seconds(seconds * 0.5);

  std::printf("Quickstart: %d saturated stations, fully connected, Table I PHY\n\n",
              nodes);

  const auto std_result =
      exp::run_scenario(scenario, exp::SchemeConfig::standard(), opts);
  std::printf("  Standard 802.11 : %6.2f Mb/s\n", std_result.total_mbps);

  const auto wtop_result =
      exp::run_scenario(scenario, exp::SchemeConfig::wtop_csma(), opts);
  std::printf("  wTOP-CSMA       : %6.2f Mb/s  (mean attempt prob %.4f)\n",
              wtop_result.total_mbps, wtop_result.mean_attempt_probability);

  // Analytical optimum (Theorem 2) for comparison.
  std::vector<double> weights(static_cast<std::size_t>(nodes), 1.0);
  const double p_star =
      analysis::optimal_master_probability(weights, scenario.phy);
  const double s_star =
      analysis::ppersistent_system_throughput(p_star, weights, scenario.phy) /
      1e6;
  std::printf("  Analytic optimum: %6.2f Mb/s  (p* = %.4f)\n", s_star, p_star);

  std::printf("\nwTOP-CSMA reaches %.0f%% of the analytic optimum without "
              "knowing N or the PHY model.\n",
              100.0 * wtop_result.total_mbps / s_star);
  return 0;
}
