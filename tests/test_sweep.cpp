// Tests of the declarative sweep engine: grid expansion order, param
// binding, result indexing, the core guarantee that a parallel run_sweep
// is bit-identical to the serial seed loop it replaced, the sweep-level
// metrics fold, retry-path no-double-count accounting, and the live
// progress tracker.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "exp/fault.hpp"
#include "exp/progress.hpp"
#include "exp/sweep.hpp"
#include "obs/collect.hpp"
#include "par/thread_pool.hpp"

namespace {

using namespace wlan;
using namespace wlan::exp;

RunOptions quick_options() {
  RunOptions opts;
  opts.warmup = sim::Duration::seconds(0.2);
  opts.measure = sim::Duration::seconds(1.0);
  return opts;
}

TEST(Sweep, ExpandIsRowMajorWithSeedsInnermost) {
  SweepSpec spec;
  spec.scenarios = {ScenarioConfig::connected(5, 10),
                    ScenarioConfig::connected(7, 20)};
  spec.schemes = {SchemeConfig::standard(),
                  SchemeConfig::fixed_p_persistent(0.05)};
  spec.params = {0.1, 0.2, 0.3};
  spec.bind = [](double, ScenarioConfig&, SchemeConfig&) {};
  spec.seeds = 2;
  const auto jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 2u * 2u * 3u * 2u);

  // Seeds vary fastest: consecutive jobs share a point index.
  EXPECT_EQ(jobs[0].point_index, 0u);
  EXPECT_EQ(jobs[0].seed_index, 0);
  EXPECT_EQ(jobs[0].scenario.seed, 10u);
  EXPECT_EQ(jobs[1].point_index, 0u);
  EXPECT_EQ(jobs[1].seed_index, 1);
  EXPECT_EQ(jobs[1].scenario.seed, 11u);
  // Then params, then schemes, then scenarios (row-major).
  EXPECT_EQ(jobs[2].point_index, 1u);
  EXPECT_EQ(jobs[6].scheme.kind, SchemeKind::kFixedPPersistent);
  const auto& last = jobs.back();
  EXPECT_EQ(last.point_index, 11u);
  EXPECT_EQ(last.scenario.num_stations, 7);
  EXPECT_EQ(last.scenario.seed, 21u);
}

TEST(Sweep, BindAppliesTheParamAxis) {
  SweepSpec spec;
  spec.scenarios = {ScenarioConfig::connected(5, 1)};
  spec.schemes = {SchemeConfig::standard()};
  spec.params = {0.01, 0.04};
  spec.bind = [](double p, ScenarioConfig&, SchemeConfig& sch) {
    sch = SchemeConfig::fixed_p_persistent(p);
  };
  const auto jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].scheme.kind, SchemeKind::kFixedPPersistent);
  EXPECT_DOUBLE_EQ(jobs[0].scheme.fixed_p, 0.01);
  EXPECT_DOUBLE_EQ(jobs[1].scheme.fixed_p, 0.04);
}

TEST(Sweep, RejectsIllFormedSpecs) {
  SweepSpec spec;
  EXPECT_THROW(expand(spec), std::invalid_argument);  // no scenarios
  spec.scenarios = {ScenarioConfig::connected(5, 1)};
  EXPECT_THROW(expand(spec), std::invalid_argument);  // no schemes
  spec.schemes = {SchemeConfig::standard()};
  spec.seeds = 0;
  EXPECT_THROW(expand(spec), std::invalid_argument);  // seeds < 1
  spec.seeds = 1;
  spec.params = {0.5};
  EXPECT_THROW(expand(spec), std::invalid_argument);  // params without bind
}

TEST(Sweep, ParallelResultBitIdenticalToSerialSeedLoop) {
  const auto scenario = ScenarioConfig::hidden(8, 16.0, 1);
  const auto scheme = SchemeConfig::standard();
  const auto opts = quick_options();
  const int seeds = 3;

  // The historical serial loop: run each seed in order, fold by hand.
  double sum = 0.0, idle_sum = 0.0, hidden_sum = 0.0, lo = 0.0, hi = 0.0;
  for (int s = 0; s < seeds; ++s) {
    ScenarioConfig sc = scenario;
    sc.seed = scenario.seed + static_cast<std::uint64_t>(s);
    const RunResult r = run_scenario(sc, scheme, opts);
    sum += r.total_mbps;
    idle_sum += r.ap_avg_idle_slots;
    hidden_sum += static_cast<double>(r.hidden_pairs);
    if (s == 0) {
      lo = hi = r.total_mbps;
    } else {
      lo = std::min(lo, r.total_mbps);
      hi = std::max(hi, r.total_mbps);
    }
  }

  SweepSpec spec = SweepSpec::single(scenario, scheme, opts, seeds);
  for (const int threads : {1, 2, 4}) {
    par::ThreadPool pool(threads);
    const SweepResult result = run_sweep(spec, &pool);
    const AveragedResult& avg = result.points[0].averaged;
    // Exact equality, not near-equality: the parallel fold must follow
    // the identical operation order.
    EXPECT_EQ(avg.mean_mbps, sum / seeds) << "threads=" << threads;
    EXPECT_EQ(avg.min_mbps, lo) << "threads=" << threads;
    EXPECT_EQ(avg.max_mbps, hi) << "threads=" << threads;
    EXPECT_EQ(avg.mean_idle_slots, idle_sum / seeds) << "threads=" << threads;
    EXPECT_EQ(avg.mean_hidden_pairs, hidden_sum / seeds)
        << "threads=" << threads;
    // Per-seed runs come back in seed order.
    ASSERT_EQ(result.points[0].runs.size(), static_cast<std::size_t>(seeds));
  }
}

TEST(Sweep, RunAveragedMatchesItsOwnSerialDefinition) {
  const auto scenario = ScenarioConfig::connected(5, 42);
  const auto scheme = SchemeConfig::fixed_p_persistent(0.05);
  const auto opts = quick_options();

  double sum = 0.0;
  for (int s = 0; s < 2; ++s) {
    ScenarioConfig sc = scenario;
    sc.seed = scenario.seed + static_cast<std::uint64_t>(s);
    sum += run_scenario(sc, scheme, opts).total_mbps;
  }
  const AveragedResult avg = run_averaged(scenario, scheme, 2, opts);
  EXPECT_EQ(avg.mean_mbps, sum / 2);
}

TEST(Sweep, AtIndexesTheGridRowMajor) {
  SweepSpec spec;
  spec.scenarios = {ScenarioConfig::connected(3, 1),
                    ScenarioConfig::connected(4, 1)};
  spec.schemes = {SchemeConfig::standard(),
                  SchemeConfig::fixed_p_persistent(0.05)};
  spec.params = {0.1, 0.9};
  spec.bind = [](double, ScenarioConfig&, SchemeConfig&) {};
  spec.options = quick_options();
  spec.options.measure = sim::Duration::seconds(0.2);
  spec.keep_runs = false;
  par::ThreadPool pool(2);
  const SweepResult result = run_sweep(spec, &pool);
  ASSERT_EQ(result.points.size(), 8u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      for (std::size_t k = 0; k < 2; ++k) {
        const SweepPoint& pt = result.at(i, j, k);
        EXPECT_EQ(pt.scenario_index, i);
        EXPECT_EQ(pt.scheme_index, j);
        EXPECT_EQ(pt.param_index, k);
        EXPECT_DOUBLE_EQ(pt.param, spec.params[k]);
        EXPECT_TRUE(pt.runs.empty());  // keep_runs = false
      }
  EXPECT_THROW(result.at(2, 0, 0), std::out_of_range);
  EXPECT_THROW(result.at(0, 2, 0), std::out_of_range);
  EXPECT_THROW(result.at(0, 0, 2), std::out_of_range);
}

TEST(Sweep, PointWithoutParamsAxisReportsNaNParam) {
  SweepSpec spec = SweepSpec::single(ScenarioConfig::connected(3, 1),
                                     SchemeConfig::standard());
  spec.options.warmup = sim::Duration::zero();
  spec.options.measure = sim::Duration::seconds(0.2);
  const SweepResult result = run_sweep(spec);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_TRUE(std::isnan(result.points[0].param));
  ASSERT_EQ(result.points[0].runs.size(), 1u);
  EXPECT_GT(result.points[0].runs[0].total_mbps, 0.0);
}

TEST(Sweep, ExceptionInsideAJobIsCapturedAsAJobError) {
  SweepSpec spec;
  spec.scenarios = {ScenarioConfig::connected(3, 1)};
  spec.schemes = {SchemeConfig::standard()};
  spec.params = {0.5};
  // Binding to an invalid station count makes the job itself throw.
  spec.bind = [](double, ScenarioConfig& sc, SchemeConfig&) {
    sc.num_stations = -1;
  };
  spec.options = quick_options();
  spec.job_retries = 1;
  spec.job_backoff_ms = 0;
  par::ThreadPool pool(2);
  // The job guard captures the failure instead of aborting the sweep:
  // run_sweep returns, the point folds as zeros, and the structured error
  // names the job.
  const SweepResult result = run_sweep(spec, &pool);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.errors.size(), 1u);
  const JobError& e = result.errors[0];
  EXPECT_EQ(e.job_index, 0u);
  EXPECT_EQ(e.point_index, 0u);
  EXPECT_EQ(e.seed_index, 0);
  EXPECT_EQ(e.kind, JobError::Kind::kException);
  EXPECT_EQ(e.attempts, 2);  // 1 + job_retries
  EXPECT_FALSE(e.what.empty());
  EXPECT_DOUBLE_EQ(result.points[0].averaged.mean_mbps, 0.0);
  // Callers that need the historical abort semantics opt back in.
  EXPECT_THROW(result.throw_if_failed(), std::runtime_error);
}

TEST(Sweep, FailedJobDoesNotPoisonTheOtherJobs) {
  SweepSpec spec;
  spec.scenarios = {ScenarioConfig::connected(3, 1)};
  spec.schemes = {SchemeConfig::standard()};
  spec.params = {0.1, 0.2};
  // Only the second param point is sick.
  spec.bind = [](double v, ScenarioConfig& sc, SchemeConfig&) {
    if (v > 0.15) sc.num_stations = -1;
  };
  spec.options = quick_options();
  spec.job_retries = 0;
  spec.job_backoff_ms = 0;
  par::ThreadPool pool(2);
  const SweepResult result = run_sweep(spec, &pool);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0].point_index, 1u);
  EXPECT_GT(result.at(0, 0, 0).averaged.mean_mbps, 0.0);
  EXPECT_DOUBLE_EQ(result.at(0, 0, 1).averaged.mean_mbps, 0.0);
}

// --------------------------------------------------- sweep metrics fold

TEST(SweepMetrics, FoldCarriesRunTotalsAndJobCounters) {
  SweepSpec spec;
  spec.scenarios = {ScenarioConfig::connected(4, 1)};
  spec.schemes = {SchemeConfig::standard()};
  spec.seeds = 3;
  spec.options = quick_options();
  const SweepResult result = run_sweep(spec);

  EXPECT_EQ(result.metrics.get("sweep.jobs_total", -1.0), 3.0);
  EXPECT_EQ(result.metrics.get("sweep.jobs_replayed", -1.0), 0.0);
  EXPECT_EQ(result.metrics.get("sweep.jobs_failed", -1.0), 0.0);

  // The fold is the job-index-order sum of the per-run registries.
  double expected_events = 0.0;
  for (const RunResult& r : result.points[0].runs)
    expected_events += r.metrics.get("sim.events_executed", 0.0);
  EXPECT_EQ(result.metrics.get("sim.events_executed", -1.0), expected_events);

  // Process-cumulative families are snapshots, not per-job sums.
  EXPECT_TRUE(result.metrics.contains("cache.hits"));
  EXPECT_TRUE(result.metrics.contains("exp.fault.job_failures"));
}

TEST(SweepMetrics, TransientFaultDoesNotDoubleCountMetrics) {
  // Regression for the retry path: a job whose first attempt throws (and
  // whose retry then succeeds) must contribute its metrics exactly once —
  // the folded totals and the science output must equal a fault-free
  // sweep's, with nothing landing in SweepResult::errors.
  SweepSpec spec;
  spec.scenarios = {ScenarioConfig::connected(4, 1)};
  spec.schemes = {SchemeConfig::standard()};
  spec.seeds = 3;
  spec.options = quick_options();
  spec.job_retries = 2;
  spec.job_backoff_ms = 0;

  par::ThreadPool pool(2);
  const SweepResult clean = run_sweep(spec, &pool);

  FaultPlan plan;
  plan.sites.push_back({/*job_index=*/1, FaultPlan::Action::kThrow,
                        /*times=*/1});
  SweepResult faulted;
  {
    wlan::exp::testing::FaultPlanGuard guard(plan);
    faulted = run_sweep(spec, &pool);
  }

  EXPECT_TRUE(faulted.ok());
  EXPECT_DOUBLE_EQ(faulted.points[0].averaged.mean_mbps,
                   clean.points[0].averaged.mean_mbps);
  // Every per-run (non-process-cumulative) folded total matches exactly.
  for (const auto& [name, value] : clean.metrics.entries()) {
    if (obs::is_process_cumulative_metric(name)) continue;
    EXPECT_EQ(faulted.metrics.get(name, -1.0), value) << name;
  }
}

TEST(SweepMetrics, TransientTimeoutDoesNotDoubleCountMetrics) {
  SweepSpec spec;
  spec.scenarios = {ScenarioConfig::connected(4, 1)};
  spec.schemes = {SchemeConfig::standard()};
  spec.seeds = 2;
  spec.options = quick_options();
  spec.job_retries = 1;
  spec.job_backoff_ms = 0;

  const SweepResult clean = run_sweep(spec);

  FaultPlan plan;
  plan.sites.push_back({/*job_index=*/0, FaultPlan::Action::kTimeout,
                        /*times=*/1});
  SweepResult faulted;
  {
    wlan::exp::testing::FaultPlanGuard guard(plan);
    faulted = run_sweep(spec);
  }

  EXPECT_TRUE(faulted.ok());
  for (const auto& [name, value] : clean.metrics.entries()) {
    if (obs::is_process_cumulative_metric(name)) continue;
    EXPECT_EQ(faulted.metrics.get(name, -1.0), value) << name;
  }
}

TEST(SweepMetrics, FailedJobCountsOnceInJobsFailed) {
  SweepSpec spec;
  spec.scenarios = {ScenarioConfig::connected(3, 1)};
  spec.schemes = {SchemeConfig::standard()};
  spec.params = {0.5};
  spec.bind = [](double, ScenarioConfig& sc, SchemeConfig&) {
    sc.num_stations = -1;
  };
  spec.options = quick_options();
  spec.job_retries = 2;
  spec.job_backoff_ms = 0;
  const SweepResult result = run_sweep(spec);
  ASSERT_EQ(result.errors.size(), 1u);
  // Three attempts, ONE failure: retries must not inflate the count the
  // sweep-accounting audit reconciles against errors.size().
  EXPECT_EQ(result.metrics.get("sweep.jobs_failed", -1.0), 1.0);
}

// ------------------------------------------------------ progress tracker

TEST(Progress, SnapshotArithmetic) {
  exp::ProgressTracker tracker(/*total=*/10, /*replayed=*/4);
  auto snap = tracker.snapshot();
  EXPECT_EQ(snap.total, 10u);
  EXPECT_EQ(snap.done, 4u);  // replayed jobs count as done up front
  EXPECT_EQ(snap.replayed, 4u);
  EXPECT_EQ(snap.rate_jobs_per_s, 0.0);
  EXPECT_EQ(snap.eta_s, 0.0);  // unknown rate -> no ETA claim

  tracker.job_finished(/*wall_ms=*/1.0, /*failed=*/false);
  tracker.job_finished(/*wall_ms=*/3.0, /*failed=*/true);
  tracker.job_finished(/*wall_ms=*/500.0, /*failed=*/false);
  snap = tracker.snapshot();
  EXPECT_EQ(snap.done, 7u);
  EXPECT_EQ(snap.failed, 1u);
  EXPECT_GT(snap.rate_jobs_per_s, 0.0);
  EXPECT_GT(snap.eta_s, 0.0);
  // log2 ms buckets: 1.0 -> [0,2), 3.0 -> [2,4), 500 -> open-ended last.
  EXPECT_EQ(snap.wall_hist_ms[0], 1u);
  EXPECT_EQ(snap.wall_hist_ms[1], 1u);
  EXPECT_EQ(snap.wall_hist_ms.back(), 1u);
  std::uint64_t histogram_total = 0;
  for (const std::uint64_t b : snap.wall_hist_ms) histogram_total += b;
  EXPECT_EQ(histogram_total, 3u);
}

TEST(Progress, HeartbeatJsonCarriesEveryKey) {
  exp::ProgressTracker tracker(5, 0);
  tracker.job_finished(2.5, false);
  const std::string doc =
      exp::ProgressTracker::heartbeat_json(tracker.snapshot());
  for (const char* key :
       {"\"total\"", "\"done\"", "\"failed\"", "\"replayed\"", "\"retries\"",
        "\"timeouts\"", "\"elapsed_seconds\"", "\"rate_jobs_per_s\"",
        "\"eta_seconds\"", "\"cache_hits\"", "\"cache_misses\"",
        "\"sweeps_completed\"", "\"wall_hist_ms\""})
    EXPECT_NE(doc.find(key), std::string::npos) << key << " missing: " << doc;
  EXPECT_EQ(doc.find("nan"), std::string::npos);
  EXPECT_EQ(doc.front(), '{');
  EXPECT_EQ(doc.back(), '}');
}

TEST(Progress, SweepsCompletedAdvancesPerSweep) {
  const std::uint64_t before = exp::sweeps_completed();
  SweepSpec spec = SweepSpec::single(ScenarioConfig::connected(3, 1),
                                     SchemeConfig::standard());
  spec.options.warmup = sim::Duration::zero();
  spec.options.measure = sim::Duration::seconds(0.2);
  run_sweep(spec);
  EXPECT_EQ(exp::sweeps_completed(), before + 1);
}

}  // namespace
