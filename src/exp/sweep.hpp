// Declarative sweep engine: describe a grid of (scenario, scheme, swept
// parameter, seed) once, and `run_sweep` expands it into independent
// simulation jobs, fans them across the par::ThreadPool, and merges the
// results in job-index order — so parallel output is bit-identical to a
// serial loop over the same grid.
//
// Axes, outermost to innermost (row-major expansion order):
//   scenarios × schemes × params × loads × seeds
// The seed axis runs scenario.seed, scenario.seed + 1, ... like
// run_averaged always has. The params axis is an optional free dimension
// (attempt probability, reset probability, ...) applied to each point by a
// user-supplied `bind` callback before the job is built. The loads axis is
// an optional offered-load dimension (per-station Mb/s written into
// ScenarioConfig::traffic) so a whole throughput–delay curve fans across
// the pool as one grid.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "exp/fault.hpp"
#include "exp/runner.hpp"
#include "obs/metrics.hpp"

namespace wlan::par {
class ThreadPool;
}

namespace wlan::exp {

struct SweepSpec {
  /// Axis 1: scenario per grid row. Must be non-empty.
  std::vector<ScenarioConfig> scenarios;
  /// Axis 2: scheme per grid column. Must be non-empty.
  std::vector<SchemeConfig> schemes;
  /// Axis 3 (optional): free swept parameter, applied via `bind`.
  std::vector<double> params;
  /// Rewrites a (scenario, scheme) pair for one value of the params axis.
  /// Required exactly when `params` is non-empty.
  std::function<void(double value, ScenarioConfig&, SchemeConfig&)> bind;
  /// Axis 4 (optional): per-station offered load in Mb/s, written into
  /// each scenario's traffic.offered_load_mbps. Requires every scenario to
  /// carry a non-saturated TrafficConfig (the load of a backlogged station
  /// is not a free variable).
  std::vector<double> loads;
  /// Axis 5 (innermost): seeds averaged per grid point; the s-th run uses
  /// scenario.seed + s. Must be >= 1.
  int seeds = 1;
  /// Options forwarded to every run_scenario call.
  RunOptions options;
  /// Keep the per-seed RunResults in each SweepPoint (per-station
  /// throughput, series, ...). Averages are always computed.
  bool keep_runs = true;

  // Job-guard policy. A job that throws or trips its watchdog is retried
  // with exponential backoff; when every attempt fails the job folds as a
  // zeroed RunResult and a structured JobError lands in
  // SweepResult::errors — the sweep itself never aborts.
  /// Retries per failing job; -1 = $WLAN_JOB_RETRIES (default 2).
  int job_retries = -1;
  /// Base backoff before the first retry, doubling per attempt, in
  /// milliseconds; -1 = $WLAN_JOB_BACKOFF_MS (default 100). 0 disables
  /// the sleep (tests want retries without wall-clock cost).
  int job_backoff_ms = -1;

  /// Shard process count for crash containment; -1 = $WLAN_SWEEP_PROCS
  /// (default 1 = in-process). With more than one process the expanded
  /// grid is partitioned into contiguous blocks, each executed by a
  /// supervised child process that journals every completed job; the
  /// parent folds the journal in job-index order, so the result is
  /// byte-identical to processes=1 at any thread count. Ignored (with a
  /// stderr note) for series/trace runs, which cannot be journaled.
  int processes = -1;

  /// One-point spec: a single (scenario, scheme) pair averaged over seeds.
  static SweepSpec single(const ScenarioConfig& scenario,
                          const SchemeConfig& scheme,
                          const RunOptions& options = {}, int seeds = 1);
};

/// One fully bound simulation job from the expanded grid.
struct SweepJob {
  /// Row-major over scenarios×schemes×params×loads.
  std::size_t point_index = 0;
  int seed_index = 0;           // position on the seed axis
  ScenarioConfig scenario;      // seed offset and load already applied
  SchemeConfig scheme;
};

/// Expands the grid into jobs in deterministic row-major order. Throws
/// std::invalid_argument on an ill-formed spec (empty axis, seeds < 1,
/// params without bind, loads with a saturated scenario).
std::vector<SweepJob> expand(const SweepSpec& spec);

/// Results for one grid point, folded over the seed axis in seed order
/// with the same arithmetic as run_averaged.
struct SweepPoint {
  std::size_t scenario_index = 0;
  std::size_t scheme_index = 0;
  std::size_t param_index = 0;
  std::size_t load_index = 0;
  /// The bound params-axis value; NaN when the spec had no params axis.
  double param = 0.0;
  /// The bound per-station load (Mb/s); NaN when the spec had no loads axis.
  double load = 0.0;
  AveragedResult averaged;
  /// Per-seed results in seed order; empty unless spec.keep_runs.
  std::vector<RunResult> runs;
};

struct SweepResult {
  std::size_t num_scenarios = 0;
  std::size_t num_schemes = 0;
  std::size_t num_params = 0;  // 1 when the spec had no params axis
  std::size_t num_loads = 0;   // 1 when the spec had no loads axis
  /// Row-major over scenarios×schemes×params×loads.
  std::vector<SweepPoint> points;

  /// Jobs that failed after every retry, in job-index order. A failed
  /// job's RunResult folded into its point as deterministic zeros; callers
  /// that cannot tolerate that must check ok() or throw_if_failed().
  std::vector<JobError> errors;

  /// Sweep-level metric totals: every per-run registry folded in job-index
  /// order via obs::merge_run_metrics (so totals are exact and identical
  /// at any thread count), plus sweep.jobs_total / sweep.jobs_replayed /
  /// sweep.jobs_failed and a post-sweep snapshot of the process-cumulative
  /// cache.* / exp.fault.* counters. flight.attempts_per_success is
  /// recomputed here from the folded counts (a ratio cannot be summed).
  /// Note: jobs satisfied by the run cache or a journal replay carry empty
  /// registries, so fold totals only cover freshly simulated jobs.
  obs::MetricsRegistry metrics;

  bool ok() const { return errors.empty(); }
  /// Throws std::runtime_error summarizing `errors` when any job failed
  /// (run_averaged and the figure drivers use this to keep the historical
  /// failing-run-throws contract).
  void throw_if_failed() const;

  const SweepPoint& at(std::size_t scenario, std::size_t scheme = 0,
                       std::size_t param = 0, std::size_t load = 0) const;
};

/// Runs every job in the expanded grid on `pool` (default: the process
/// global pool) and merges per-point in job-index order. Output is
/// bit-identical for any thread count, including 1.
///
/// Crash safety: with $WLAN_SWEEP_JOURNAL set (and no series/trace
/// recording), each completed job is checkpointed to an on-disk journal;
/// an interrupted sweep replays the completed jobs on restart and runs
/// only the remainder, with byte-identical final output. Failing jobs are
/// guarded (retry + backoff, watchdog timeouts converted to errors) and
/// reported through SweepResult::errors instead of aborting the sweep.
///
/// Process isolation: with $WLAN_SWEEP_PROCS > 1 (or SweepSpec::processes)
/// the jobs are executed by supervised child processes (see exp/shard.hpp)
/// so a SIGSEGV or hard hang in one job cannot take the sweep down; a
/// crashed shard is respawned, resuming from its journal, and a job that
/// repeatedly kills its shard is quarantined as a JobError{kind=kCrash}.
/// When no journal directory is configured, a supervised sweep uses an
/// invocation-scoped scratch journal that is removed at exit.
SweepResult run_sweep(const SweepSpec& spec,
                      par::ThreadPool* pool = nullptr);

}  // namespace wlan::exp
