// Figure 3: standard 802.11, IdleSense, wTOP-CSMA and TORA-CSMA vs the
// number of stations in a fully connected network.
//
// Paper shape: the three adaptive schemes sit together near the optimum
// (~22 Mb/s) and stay flat in N; standard 802.11 is lowest and degrades.
#include "analysis/ppersistent.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wlan;
  bench::init(argc, argv);
  bench::header("Figure 3",
                "Scheme comparison vs number of stations, fully connected "
                "(circle r=8), Table I PHY");

  const int seeds = bench::default_seeds();
  const auto opts = bench::adaptive_options();

  util::Table table({"Nodes", "TORA-CSMA", "wTOP-CSMA", "IdleSense",
                     "Std 802.11", "analytic optimum"});
  util::CsvWriter csv("fig03_connected_comparison.csv");
  csv.header({"nodes", "tora_mbps", "wtop_mbps", "idlesense_mbps",
              "std_mbps", "analytic_optimum_mbps"});

  for (int n : bench::node_grid()) {
    const auto scenario = exp::ScenarioConfig::connected(n, 1);
    const double tora =
        bench::mean_mbps(scenario, exp::SchemeConfig::tora_csma(), opts, seeds);
    const double wtop =
        bench::mean_mbps(scenario, exp::SchemeConfig::wtop_csma(), opts, seeds);
    const double idle = bench::mean_mbps(
        scenario, exp::SchemeConfig::idle_sense_scheme(), opts, seeds);
    const double std80211 =
        bench::mean_mbps(scenario, exp::SchemeConfig::standard(), opts, seeds);

    std::vector<double> w(static_cast<std::size_t>(n), 1.0);
    const double s_star =
        analysis::ppersistent_system_throughput(
            analysis::optimal_master_probability(w, scenario.phy), w,
            scenario.phy) /
        1e6;

    table.add_row(std::to_string(n), {tora, wtop, idle, std80211, s_star});
    csv.row_numeric(
        {static_cast<double>(n), tora, wtop, idle, std80211, s_star});
  }

  table.print(std::cout);
  std::printf("\nExpected shape: TORA ~ wTOP ~ IdleSense near the analytic "
              "optimum, flat in N; Std 802.11 below them.\n");
  return 0;
}
