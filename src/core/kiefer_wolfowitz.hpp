// Kiefer-Wolfowitz stochastic approximation (Section III.B).
//
// Finds the maximizer of an unknown quasi-concave function S(x) from noisy
// measurements y with E[y | x] = S(x). The iterate x^(k) is updated from
// finite-difference probes at x +- b_k:
//
//     x^(k+1) = x^(k) + a_k * (y_plus - y_minus) / b_k          (paper eq. 5)
//
// with a_k = gain/k and b_k = k^(-b_exponent); the paper uses gain = 1 and
// b_exponent = 1/3, which satisfy the Kiefer-Wolfowitz step conditions
// (sum a_k = inf, sum a_k b_k < inf, sum (a_k/b_k)^2 < inf).
//
// Probe domain. The recursion can run on the control variable directly
// (log_space = false; TORA-CSMA's p0 in [0,1]) or on its logarithm
// (log_space = true; wTOP-CSMA's attempt probability). The attempt
// probability must be tuned in log-space because its optimum scales as
// Theta(1/N) (eq. 8): a linear +-b_k probe would dwarf p* for any
// realistic N until k ~ (1/p*)^3, while log-space probes are
// multiplicative (p * e^{+-b_k}) and track any magnitude. The paper's own
// plots confirm this choice: Figs. 2/4 sweep log(attempt probability) and
// Fig. 9 reports -log(p) with oscillations of constant +-b_k amplitude in
// the log domain. Quasi-concavity is preserved (log is monotone).
//
// This class is measurement-driven and simulator-agnostic: call probe() to
// get the point to evaluate next, then report() its measured value; plus and
// minus probes alternate automatically (Algorithm 1 lines 6-13). It is the
// shared engine of wTOP-CSMA and TORA-CSMA.
//
// Units note: Algorithm 1 measures segment throughput as bytes/period
// without fixing units. The step size a_k*dy/b_k inherits the measurement
// scale, so callers should report throughput in Mb/s for 802.11a/g rates
// (values 0..~30), which makes gain = 1 well-conditioned. The `gain` option
// rescales if a different unit is preferred.
#pragma once

namespace wlan::core {

struct KwOptions {
  double initial = 0.5;      // x^(k0), Algorithm 1 line 2
  double probe_min = 0.0;    // clamp for the probed point (external domain)
  double probe_max = 0.9;    // Algorithm 1 line 13 clamps p + b_k to 0.9
  double value_min = 0.0;    // clamp for the iterate itself (external domain)
  double value_max = 1.0;
  double gain = 1.0;         // a_k = gain / k
  double b_exponent = 1.0 / 3.0;  // b_k = k^(-b_exponent)
  int initial_k = 2;         // Algorithm 1 line 1 starts at k = 2
  /// Run the recursion on ln(x) instead of x (see header comment). All
  /// other fields remain expressed in the external (linear) domain and
  /// must be positive when set.
  bool log_space = false;
  /// Dead-zone escape. When BOTH probe measurements of an iteration fall at
  /// or below this threshold, the finite-difference gradient is ~0/b_k and
  /// the plain recursion stalls. For channel-access tuning a pair of dead
  /// probes means the medium is collision-saturated (the under-utilized
  /// side never measures exactly zero because probe_min keeps some traffic
  /// alive), so the iterate steps DOWN by b_k instead. Negative disables
  /// the escape. This guard is an implementation necessity the paper's
  /// pseudo code omits: with initial pval = 0.5 and 40+ capture-free
  /// stations, both of Algorithm 1's first probes yield zero throughput.
  double dead_measurement_threshold = -1.0;
  /// The escape only fires while estimate() exceeds this floor (external
  /// domain). Guards the degenerate bottom: for a near-empty network a
  /// minuscule iterate can legitimately measure "dead" at both probes, and
  /// stepping further down would pin it at value_min.
  double dead_zone_floor = 0.0;
  /// Trust region: per-iteration |step| cap in the RECURSION domain (so in
  /// ln-units when log_space is set). The objective's gradient magnitude
  /// varies by orders of magnitude across the domain (Fig. 2's curve is
  /// nearly flat at the bottom and cliff-steep past the peak), so an early
  /// large-a_k iteration can otherwise catapult the iterate across the
  /// whole range. Near convergence steps are tiny and the cap is inactive,
  /// preserving the Kiefer-Wolfowitz asymptotics. <= 0 disables.
  double max_step = 0.0;
};

class KieferWolfowitz {
 public:
  explicit KieferWolfowitz(const KwOptions& options);
  KieferWolfowitz() : KieferWolfowitz(KwOptions{}) {}

  /// The point the system should operate at right now: estimate() offset by
  /// +-b_k in the recursion domain, clamped to [probe_min, probe_max].
  double probe() const;

  /// True while the pending measurement is the +b_k segment.
  bool plus_phase() const { return plus_phase_; }

  /// Feeds the measured objective for the current probe. Completing a
  /// minus-phase measurement performs one gradient update (eq. 5) and
  /// advances k.
  void report(double y);

  /// Current iterate x^(k) in the external domain (pval in the paper's
  /// pseudo code).
  double estimate() const;

  /// Resets the iterate (TORA-CSMA stage changes: pval <- 0.5) while
  /// keeping k, per Algorithm 2 where stage changes bypass the k increment.
  void reset_value(double value);

  /// Full restart: iterate AND step sequences.
  void reset_all(double value);

  /// Most recent gradient estimate, in the recursion domain (diagnostics).
  double last_gradient() const { return last_gradient_; }

  int k() const { return k_; }
  double a_k() const;
  double b_k() const;

  /// Completed plus/minus iteration pairs.
  long iterations() const { return iterations_; }

  const KwOptions& options() const { return options_; }

 private:
  double to_internal(double external) const;
  double to_external(double internal) const;
  double clamp_internal_value(double v) const;
  double clamp_external_probe(double v) const;

  KwOptions options_;
  double value_;  // iterate, in the recursion (internal) domain
  int k_;
  bool plus_phase_ = true;
  double y_plus_ = 0.0;
  double last_gradient_ = 0.0;
  long iterations_ = 0;
};

}  // namespace wlan::core
