// RandomReset(j; p0) analysis (paper Definition 4, eq. 11, Lemmas 4-8,
// Figs. 12-13): specializes the Bianchi fixed-point machinery to the
// two-parameter reset family and exposes the quantities the paper plots.
#pragma once

#include <vector>

#include "analysis/bianchi.hpp"
#include "mac/wifi_params.hpp"

namespace wlan::analysis {

/// The reset distribution of RandomReset(j; p0) over stages 0..m
/// (Definition 4): q_j = p0, q_i = (1-p0)/(m-j) for i in {j+1..m}.
/// Requires 0 <= j <= m-1 (at j = m the distribution is the point mass).
std::vector<double> random_reset_distribution(int stage, double p0, int m);

/// Attempt probability given conditional collision probability c (eq. 11).
double random_reset_tau_given_c(int stage, double p0, double c, int cw_min,
                                int m);

/// Fixed-point attempt probability tau(j; p0) for n nodes.
FixedPoint random_reset_fixed_point(int stage, double p0, int n, int cw_min,
                                    int m);

/// Saturation throughput S~(j, p0) in bits/s for n nodes in a fully
/// connected network (Lemma 8 / Fig. 13).
double random_reset_throughput(int stage, double p0, int n,
                               const mac::WifiParams& params);

/// Range of attempt probabilities reachable by ANY exponential-backoff
/// reset distribution: [tau(m-1; 0), tau(0; 1)] (Lemma 6).
struct TauRange {
  double low;   // tau(m-1; 0)
  double high;  // tau(0; 1)
};
TauRange reachable_tau_range(int n, int cw_min, int m);

}  // namespace wlan::analysis
