// Fairness metrics for throughput allocations.
#pragma once

#include <vector>

namespace wlan::stats {

/// Jain's fairness index: (sum x)^2 / (n * sum x^2); 1.0 = perfectly fair.
/// Returns 1.0 for empty or all-zero input.
double jain_index(const std::vector<double>& x);

/// Weighted Jain index computed on x_i / w_i (Definition 2: throughput
/// proportional to weight). Weights must be positive and sized like x.
double weighted_jain_index(const std::vector<double>& x,
                           const std::vector<double>& weights);

/// Normalized throughputs x_i / w_i (Table II's third column).
std::vector<double> normalized_throughput(const std::vector<double>& x,
                                          const std::vector<double>& weights);

/// max |norm_i - mean(norm)| / mean(norm); 0 = perfectly weighted-fair.
double max_normalized_deviation(const std::vector<double>& x,
                                const std::vector<double>& weights);

/// Short-term fairness (the sliding-window Jain index of IdleSense's
/// evaluation, referenced in the paper's Section VII): `sources[k]` is the
/// station index of the k-th successful transmission; for every window of
/// `window` consecutive successes, compute the Jain index of per-station
/// success counts, and return the mean over all (stride-advanced) windows.
/// 1.0 = every station takes perfectly alternating turns at that horizon.
/// Returns 1.0 when there are fewer than `window` successes.
double sliding_window_jain(const std::vector<int>& sources, int num_stations,
                           std::size_t window, std::size_t stride = 1);

}  // namespace wlan::stats
