// Unit tests for the traffic layer: arrival generators (determinism and
// distribution), the bounded PacketQueue (FIFO, tail drop, occupancy
// integral), and the DelayHistogram (bucketing, exact mean, hand-computed
// percentiles).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/delay.hpp"
#include "traffic/arrival.hpp"
#include "traffic/queue.hpp"

namespace {

using namespace wlan;
using traffic::TrafficConfig;
using traffic::TrafficModel;

// ------------------------------------------------------------- generators

TEST(Arrivals, CbrProducesExactConstantGaps) {
  traffic::CbrArrivals cbr(sim::Duration::microseconds(125));
  util::Rng rng(7);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(cbr.next_gap(rng), sim::Duration::microseconds(125));
}

TEST(Arrivals, CbrRejectsNonPositiveGap) {
  EXPECT_THROW(traffic::CbrArrivals(sim::Duration::zero()),
               std::invalid_argument);
}

TEST(Arrivals, MeanInterarrivalMatchesLoadAndPayload) {
  // 8000-bit payloads at 1 Mb/s -> exactly 8 ms between packets.
  const auto cfg = TrafficConfig::poisson(1.0);
  EXPECT_EQ(traffic::mean_interarrival(cfg, 8000),
            sim::Duration::milliseconds(8));
  // 4 Mb/s -> 2 ms.
  EXPECT_EQ(traffic::mean_interarrival(TrafficConfig::cbr(4.0), 8000),
            sim::Duration::milliseconds(2));
}

TEST(Arrivals, MeanInterarrivalRejectsNonPositiveLoad) {
  auto cfg = TrafficConfig::poisson(0.0);
  EXPECT_THROW(traffic::mean_interarrival(cfg, 8000), std::invalid_argument);
}

TEST(Arrivals, PoissonStreamIsDeterministicPerSeed) {
  traffic::PoissonArrivals a(sim::Duration::milliseconds(1));
  traffic::PoissonArrivals b(sim::Duration::milliseconds(1));
  util::Rng ra(42, 9), rb(42, 9), rc(42, 10);
  bool any_differs = false;
  for (int i = 0; i < 100; ++i) {
    const auto ga = a.next_gap(ra);
    EXPECT_EQ(ga, b.next_gap(rb));  // same (seed, stream): identical
    traffic::PoissonArrivals c(sim::Duration::milliseconds(1));
    if (ga != c.next_gap(rc)) any_differs = true;
  }
  EXPECT_TRUE(any_differs);  // different stream: different gaps
}

TEST(Arrivals, PoissonMeanApproximatesConfiguredGap) {
  traffic::PoissonArrivals a(sim::Duration::milliseconds(2));
  util::Rng rng(1, 1);
  double sum_s = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum_s += a.next_gap(rng).s();
  EXPECT_NEAR(sum_s / n, 2e-3, 2e-5);  // within 1 %
}

TEST(Arrivals, OnOffEmitsPeakGapsAndSilences) {
  // Peak gap 1 ms, mean burst 10 ms, mean silence 40 ms.
  traffic::OnOffArrivals a(sim::Duration::milliseconds(1), 0.010, 0.040);
  util::Rng rng(5, 2);
  int in_burst = 0, with_silence = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto gap = a.next_gap(rng);
    ASSERT_GT(gap, sim::Duration::zero());
    if (gap == sim::Duration::milliseconds(1)) {
      ++in_burst;
    } else {
      EXPECT_GT(gap, sim::Duration::milliseconds(1));  // peak gap + silence
      ++with_silence;
    }
  }
  // Mean burst holds ~10 packets, so silences are ~1/10 of the gaps.
  EXPECT_GT(in_burst, 4 * with_silence);
  EXPECT_GT(with_silence, n / 50);
}

TEST(Arrivals, OnOffLongRunRateMatchesOfferedLoad) {
  const auto cfg = TrafficConfig::on_off(2.0, 0.010, 0.040);
  auto gen = traffic::make_arrival_process(cfg, 8000);
  util::Rng rng(3, 1);
  double total_s = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) total_s += gen->next_gap(rng).s();
  const double rate_mbps = n * 8000.0 / total_s / 1e6;
  EXPECT_NEAR(rate_mbps, 2.0, 0.1);  // duty-cycle compensation works
}

TEST(Arrivals, TraceReplaysGapsInOrderAndWraps) {
  traffic::TraceArrivals a({sim::Duration::milliseconds(1),
                            sim::Duration::milliseconds(2),
                            sim::Duration::milliseconds(3)},
                           /*repeat=*/true);
  util::Rng rng(1);
  for (int lap = 0; lap < 3; ++lap) {
    EXPECT_EQ(a.next_gap(rng), sim::Duration::milliseconds(1));
    EXPECT_EQ(a.next_gap(rng), sim::Duration::milliseconds(2));
    EXPECT_EQ(a.next_gap(rng), sim::Duration::milliseconds(3));
  }
}

TEST(Arrivals, NonRepeatingTraceGoesSilent) {
  traffic::TraceArrivals a({sim::Duration::milliseconds(5)}, /*repeat=*/false);
  util::Rng rng(1);
  EXPECT_EQ(a.next_gap(rng), sim::Duration::milliseconds(5));
  EXPECT_LT(a.next_gap(rng), sim::Duration::zero());  // exhausted sentinel
  EXPECT_LT(a.next_gap(rng), sim::Duration::zero());  // stays exhausted
}

TEST(Arrivals, TraceRejectsEmptyAndNegative) {
  EXPECT_THROW(traffic::TraceArrivals({}, true), std::invalid_argument);
  EXPECT_THROW(
      traffic::TraceArrivals({sim::Duration::nanoseconds(-5)}, true),
      std::invalid_argument);
}

TEST(Arrivals, FactoryBuildsEveryFiniteModelAndRejectsSaturated) {
  EXPECT_THROW(traffic::make_arrival_process(TrafficConfig(), 8000),
               std::invalid_argument);
  EXPECT_EQ(traffic::make_arrival_process(TrafficConfig::cbr(1.0), 8000)
                ->name(),
            "CBR");
  EXPECT_EQ(traffic::make_arrival_process(TrafficConfig::poisson(1.0), 8000)
                ->name(),
            "Poisson");
  EXPECT_EQ(traffic::make_arrival_process(
                TrafficConfig::on_off(1.0, 0.01, 0.04), 8000)
                ->name(),
            "OnOff");
  EXPECT_EQ(traffic::make_arrival_process(TrafficConfig::trace({0.001}), 8000)
                ->name(),
            "Trace");
}

// ------------------------------------------------------------------ queue

TEST(PacketQueue, FifoOrderAndSizes) {
  traffic::PacketQueue q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_TRUE(q.push(sim::Time::from_ns(100)));
  EXPECT_TRUE(q.push(sim::Time::from_ns(200)));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.front().enqueued, sim::Time::from_ns(100));
  q.pop(sim::Time::from_ns(300));
  EXPECT_EQ(q.front().enqueued, sim::Time::from_ns(200));
  q.pop(sim::Time::from_ns(400));
  EXPECT_TRUE(q.empty());
}

TEST(PacketQueue, TailDropsWhenFullAndCounts) {
  traffic::PacketQueue q(2);
  EXPECT_TRUE(q.push(sim::Time::from_ns(1)));
  EXPECT_TRUE(q.push(sim::Time::from_ns(2)));
  EXPECT_FALSE(q.push(sim::Time::from_ns(3)));  // full
  EXPECT_FALSE(q.push(sim::Time::from_ns(4)));
  EXPECT_EQ(q.arrivals(), 4u);
  EXPECT_EQ(q.drops(), 2u);
  EXPECT_DOUBLE_EQ(q.drop_rate(), 0.5);
  // Draining opens space again.
  q.pop(sim::Time::from_ns(5));
  EXPECT_TRUE(q.push(sim::Time::from_ns(6)));
  EXPECT_EQ(q.drops(), 2u);
}

TEST(PacketQueue, RingWrapsAcrossManyCycles) {
  traffic::PacketQueue q(3);
  std::int64_t next = 0;
  for (int cycle = 0; cycle < 50; ++cycle) {
    ASSERT_TRUE(q.push(sim::Time::from_ns(++next)));
    ASSERT_TRUE(q.push(sim::Time::from_ns(++next)));
    EXPECT_EQ(q.front().enqueued, sim::Time::from_ns(next - 1));
    q.pop(sim::Time::from_ns(next));
    EXPECT_EQ(q.front().enqueued, sim::Time::from_ns(next));
    q.pop(sim::Time::from_ns(next));
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.drops(), 0u);
}

TEST(PacketQueue, OccupancyIntegralHandComputed) {
  traffic::PacketQueue q(8);
  // size 1 over [0,10), 2 over [10,30), 1 over [30,40):
  // integral = 10 + 40 + 10 = 60 packet-ns; mean over 40 ns = 1.5.
  EXPECT_TRUE(q.push(sim::Time::from_ns(0)));
  EXPECT_TRUE(q.push(sim::Time::from_ns(10)));
  q.pop(sim::Time::from_ns(30));
  EXPECT_DOUBLE_EQ(q.mean_occupancy(sim::Time::from_ns(40)), 1.5);
  // Querying later keeps integrating the current size (1):
  // 10 + 40 + 30 = 80 packet-ns over 60 ns.
  EXPECT_DOUBLE_EQ(q.mean_occupancy(sim::Time::from_ns(60)), 80.0 / 60.0);
}

TEST(PacketQueue, ResetStatsKeepsPacketsAndRestartsIntegral) {
  traffic::PacketQueue q(2);
  EXPECT_TRUE(q.push(sim::Time::from_ns(0)));
  EXPECT_FALSE(q.push(sim::Time::from_ns(1)) && q.push(sim::Time::from_ns(2)));
  q.reset_stats(sim::Time::from_ns(100));
  EXPECT_EQ(q.arrivals(), 0u);
  EXPECT_EQ(q.drops(), 0u);
  EXPECT_EQ(q.size(), 2u);  // queued packets survive the warm-up boundary
  EXPECT_EQ(q.front().enqueued, sim::Time::from_ns(0));  // true enqueue time
  // Integral restarts at the reset point: size 2 throughout.
  EXPECT_DOUBLE_EQ(q.mean_occupancy(sim::Time::from_ns(150)), 2.0);
}

TEST(PacketQueue, RejectsZeroCapacity) {
  EXPECT_THROW(traffic::PacketQueue(0), std::invalid_argument);
}

// -------------------------------------------------------- delay histogram

TEST(DelayHistogram, BucketMappingIsLogLinear) {
  using H = stats::DelayHistogram;
  // Values below 32 ns get exact buckets.
  for (std::uint64_t v = 0; v < 32; ++v) EXPECT_EQ(H::bucket_of(v), v);
  // First octave is still exact (width 1).
  EXPECT_EQ(H::bucket_of(32), 32u);
  EXPECT_EQ(H::bucket_of(63), 63u);
  // Then 32 sub-buckets per octave.
  EXPECT_EQ(H::bucket_of(64), 64u);
  EXPECT_EQ(H::bucket_of(65), 64u);
  EXPECT_EQ(H::bucket_of(127), 95u);
  EXPECT_EQ(H::bucket_of(128), 96u);
  // Every value lands in a bucket whose [low, low+width) contains it.
  for (std::uint64_t v : {0ull, 31ull, 32ull, 100ull, 1000ull, 123456ull,
                          987654321ull, 1234567890123ull}) {
    const auto b = H::bucket_of(v);
    EXPECT_LE(H::bucket_low(b), v);
    EXPECT_LT(v, H::bucket_low(b) + H::bucket_width(b));
  }
}

TEST(DelayHistogram, ExactMeanMinMaxCount) {
  stats::DelayHistogram h;
  h.record(sim::Duration::nanoseconds(100));
  h.record(sim::Duration::nanoseconds(300));
  h.record(sim::Duration::nanoseconds(200));
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean_s(), 200e-9);  // the mean is exact, not bucketed
  EXPECT_DOUBLE_EQ(h.min_s(), 100e-9);
  EXPECT_DOUBLE_EQ(h.max_s(), 300e-9);
}

TEST(DelayHistogram, QuantilesHandComputedOnExactBuckets) {
  // 32 samples at 0..31 ns: every sample has its own width-1 bucket, so
  // quantile(q) = rank's bucket low + 1 * 1.0 (single sample -> frac 1).
  stats::DelayHistogram h;
  for (int v = 0; v < 32; ++v) h.record(sim::Duration::nanoseconds(v));
  // rank = ceil(0.5 * 32) = 16 -> bucket 15 -> 15 + 1 = 16 ns.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 16e-9);
  // rank = ceil(0.95 * 32) = 31 -> bucket 30 -> 31 ns.
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 31e-9);
  // Extremes.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1e-9);   // rank clamps to 1 -> bucket 0
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 32e-9);  // rank 32 -> bucket 31
}

TEST(DelayHistogram, QuantileInterpolatesWithinABucket) {
  // 1000 ns lands in the bucket [992, 1008) (width 16). With 10 equal
  // samples, quantile(0.5) -> rank 5 -> 992 + 16 * 5/10 = 1000 ns.
  stats::DelayHistogram h;
  for (int i = 0; i < 10; ++i) h.record(sim::Duration::nanoseconds(1000));
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1000e-9);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1008e-9);  // rank 10 -> bucket top
  EXPECT_LE(h.quantile(0.5), h.quantile(0.95));
  EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
}

TEST(DelayHistogram, MergeAddsDistributions) {
  stats::DelayHistogram a, b;
  a.record(sim::Duration::nanoseconds(10));
  b.record(sim::Duration::nanoseconds(20));
  b.record(sim::Duration::nanoseconds(30));
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean_s(), 20e-9);
  EXPECT_DOUBLE_EQ(a.min_s(), 10e-9);
  EXPECT_DOUBLE_EQ(a.max_s(), 30e-9);
}

TEST(DelayHistogram, EmptyAndResetReturnZero) {
  stats::DelayHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean_s(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
  h.record(sim::Duration::milliseconds(1));
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(DelayHistogram, NegativeDelaysClampToZero) {
  stats::DelayHistogram h;
  h.record(sim::Duration::nanoseconds(-100));
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean_s(), 0.0);
  EXPECT_DOUBLE_EQ(h.max_s(), 0.0);
}

}  // namespace
