// Extension: quantifies Section I's RTS/CTS argument. The paper dismisses
// RTS/CTS because control frames go at 6 Mb/s while data goes at 54 Mb/s,
// so the overhead is large even though RTS/CTS eliminates most hidden-node
// data collisions. This bench measures both sides of that trade:
// connected (overhead only) and hidden (protection vs overhead), for
// standard 802.11 and for TORA-CSMA — showing that model-free tuning over
// BASIC access (the paper's proposal) beats turning RTS/CTS on.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace wlan;
  bench::init(argc, argv);
  bench::header("Extension: RTS/CTS trade-off (Section I)",
                "Basic vs RTS/CTS access, connected and hidden (disc r=16), "
                "standard 802.11 and TORA-CSMA");

  const auto opts = bench::adaptive_options();
  const std::vector<int> nodes = util::bench_fast()
                                     ? std::vector<int>{20}
                                     : std::vector<int>{10, 20, 40};

  util::Table table({"Nodes", "Scheme", "Connected basic", "Connected RTS/CTS",
                     "Hidden basic", "Hidden RTS/CTS"});
  util::CsvWriter csv("ext_rtscts_tradeoff.csv");
  csv.header({"nodes", "scheme", "connected_basic", "connected_rtscts",
              "hidden_basic", "hidden_rtscts"});

  for (int n : nodes) {
    for (const auto& scheme :
         {exp::SchemeConfig::standard(), exp::SchemeConfig::tora_csma()}) {
      auto run = [&](bool hidden, bool rts) {
        auto scenario = hidden ? exp::ScenarioConfig::hidden(n, 16.0, 1)
                               : exp::ScenarioConfig::connected(n, 1);
        if (rts) scenario.phy.rts_threshold_bits = 0;
        return exp::run_scenario(scenario, scheme, opts).total_mbps;
      };
      const double cb = run(false, false), cr = run(false, true);
      const double hb = run(true, false), hr = run(true, true);
      table.add_row(std::to_string(n) + " " + scheme.name(),
                    {cb, cr, hb, hr});
      csv.row({std::to_string(n), scheme.name(), util::format_double(cb, 6),
               util::format_double(cr, 6), util::format_double(hb, 6),
               util::format_double(hr, 6)});
    }
  }
  table.print(std::cout);
  std::printf("\nExpected: RTS/CTS costs throughput when connected (6 Mb/s "
              "control frames), and TORA-CSMA over basic access matches or "
              "beats RTS/CTS under hidden nodes — the paper's rationale for "
              "tuning instead of reserving.\n");
  return 0;
}
