#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/csv.hpp"

namespace wlan::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) headers_.resize(cells.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& label, const std::vector<double>& values,
                    int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << cell << std::string(widths[c] - cell.size(), ' ');
      if (c + 1 < headers_.size()) os << "  ";
    }
    os << '\n';
  };

  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace wlan::util
