// Collectors: one call flattens every per-component Stats struct a
// finished run holds into a MetricsRegistry. This is the only obs/ header
// that looks DOWN the dependency stack (at mac::Network); the traced
// components themselves only ever see obs/trace.hpp.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"

namespace wlan::mac {
class Network;
}

namespace wlan::obs {

class FlightRecorder;

/// Snapshot of a finished run's counters: sim.* (executive + event heap),
/// medium.*, mac.cohort.* (cohort path only) and traffic.* (finite-source
/// runs only). Deterministic for a deterministic run — these are exactly
/// the counters compare_bench.py tracks for drift.
MetricsRegistry collect_metrics(mac::Network& net);

/// Appends process-wide exp::run_cache hit/miss counters (cache.*).
/// Cumulative across the process, so bench cases exclude them.
void add_run_cache_metrics(MetricsRegistry& reg);

/// Appends the process-wide fault-tolerance counters (exp.fault.*): job
/// exceptions/timeouts/retries/failures and sweep-journal activity.
/// Cumulative across the process, like cache.*.
void add_fault_metrics(MetricsRegistry& reg);

/// Appends per-category profiler buckets (profile.<cat>.events /
/// profile.<cat>.wall_ns). Wall times are machine-dependent; like cache.*
/// they are for humans, not for drift comparison.
void add_profile_metrics(MetricsRegistry& reg, const PhaseProfiler& p);

/// Appends flight-recorder span aggregates (flight.*): frame counts by
/// outcome, attempts-per-success, and the contention-vs-air-vs-queue
/// latency split over completed frames. Deterministic for a deterministic
/// run, like collect_metrics.
void add_flight_metrics(MetricsRegistry& reg, const FlightRecorder& fr);

/// True for metric names that accumulate across the PROCESS rather than
/// one run (cache.*, exp.fault.*, profile.*) — summing them per-job would
/// double-count, so the sweep-level fold skips them.
bool is_process_cumulative_metric(const std::string& name);

/// Folds one run's registry into a sweep-level registry: per-run names are
/// summed in call order, process-cumulative names are skipped. Calling
/// this per job index in ascending order yields the same totals at any
/// thread count (exact: counter sums are integer-valued doubles).
void merge_run_metrics(MetricsRegistry& into, const MetricsRegistry& run);

/// When WLAN_METRICS=<dir> is set, writes `reg` to
/// `<dir>/metrics.<n>.json` (n = process-wide counter). No-op otherwise.
void maybe_export_metrics(const MetricsRegistry& reg);

}  // namespace wlan::obs
