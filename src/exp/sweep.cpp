#include "exp/sweep.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"
#include "par/thread_pool.hpp"

namespace wlan::exp {

SweepSpec SweepSpec::single(const ScenarioConfig& scenario,
                            const SchemeConfig& scheme,
                            const RunOptions& options, int seeds) {
  SweepSpec spec;
  spec.scenarios = {scenario};
  spec.schemes = {scheme};
  spec.options = options;
  spec.seeds = seeds;
  return spec;
}

std::vector<SweepJob> expand(const SweepSpec& spec) {
  if (spec.scenarios.empty())
    throw std::invalid_argument("SweepSpec: scenarios axis is empty");
  if (spec.schemes.empty())
    throw std::invalid_argument("SweepSpec: schemes axis is empty");
  if (spec.seeds < 1)
    throw std::invalid_argument("SweepSpec: seeds must be >= 1");
  if (!spec.params.empty() && !spec.bind)
    throw std::invalid_argument("SweepSpec: params axis needs a bind");
  const std::size_t num_params = spec.params.empty() ? 1 : spec.params.size();
  const std::size_t num_loads = spec.loads.empty() ? 1 : spec.loads.size();
  std::vector<SweepJob> jobs;
  jobs.reserve(spec.scenarios.size() * spec.schemes.size() * num_params *
               num_loads * static_cast<std::size_t>(spec.seeds));
  std::size_t point = 0;
  for (const auto& scenario : spec.scenarios) {
    for (const auto& scheme : spec.schemes) {
      for (std::size_t pi = 0; pi < num_params; ++pi) {
        ScenarioConfig bound_scenario = scenario;
        SchemeConfig bound_scheme = scheme;
        if (!spec.params.empty())
          spec.bind(spec.params[pi], bound_scenario, bound_scheme);
        // Validated post-bind (a bind may rewrite the traffic config): a
        // load only means something to a model that reads it — saturated
        // stations have no load knob and a trace replays fixed gaps, so a
        // loads axis over either would emit one flat "curve".
        if (!spec.loads.empty() && !bound_scenario.traffic.load_driven())
          throw std::invalid_argument(
              "SweepSpec: loads axis needs load-driven scenario traffic "
              "(CBR, Poisson, or on/off)");
        for (std::size_t li = 0; li < num_loads; ++li, ++point) {
          ScenarioConfig loaded_scenario = bound_scenario;
          if (!spec.loads.empty())
            loaded_scenario.traffic.offered_load_mbps = spec.loads[li];
          for (int s = 0; s < spec.seeds; ++s) {
            SweepJob job;
            job.point_index = point;
            job.seed_index = s;
            job.scenario = loaded_scenario;
            job.scenario.seed =
                loaded_scenario.seed + static_cast<std::uint64_t>(s);
            job.scheme = bound_scheme;
            jobs.push_back(std::move(job));
          }
        }
      }
    }
  }
  return jobs;
}

namespace {

/// Seed-axis fold, same arithmetic and order as the historical serial
/// run_averaged loop so sweep output stays bit-identical to it.
AveragedResult fold_seeds(const std::vector<RunResult>& runs) {
  AveragedResult avg;
  if (runs.empty()) return avg;
  double sum = 0.0, idle_sum = 0.0, hidden_sum = 0.0;
  double lo = 0.0, hi = 0.0;
  double offered_sum = 0.0, drop_sum = 0.0, occupancy_sum = 0.0;
  double delay_sum = 0.0, p50_sum = 0.0, p95_sum = 0.0, p99_sum = 0.0;
  for (std::size_t s = 0; s < runs.size(); ++s) {
    const RunResult& r = runs[s];
    sum += r.total_mbps;
    idle_sum += r.ap_avg_idle_slots;
    hidden_sum += static_cast<double>(r.hidden_pairs);
    offered_sum += r.offered_mbps;
    drop_sum += r.drop_rate;
    occupancy_sum += r.mean_queue_occupancy;
    delay_sum += r.mean_delay_s;
    p50_sum += r.delay_p50_s;
    p95_sum += r.delay_p95_s;
    p99_sum += r.delay_p99_s;
    if (s == 0) {
      lo = hi = r.total_mbps;
    } else {
      lo = std::min(lo, r.total_mbps);
      hi = std::max(hi, r.total_mbps);
    }
  }
  const auto n = static_cast<double>(runs.size());
  avg.mean_mbps = sum / n;
  avg.min_mbps = lo;
  avg.max_mbps = hi;
  avg.mean_idle_slots = idle_sum / n;
  avg.mean_hidden_pairs = hidden_sum / n;
  avg.mean_offered_mbps = offered_sum / n;
  avg.mean_drop_rate = drop_sum / n;
  avg.mean_queue_occupancy = occupancy_sum / n;
  avg.mean_delay_s = delay_sum / n;
  avg.mean_delay_p50_s = p50_sum / n;
  avg.mean_delay_p95_s = p95_sum / n;
  avg.mean_delay_p99_s = p99_sum / n;
  return avg;
}

/// With WLAN_PROFILE on, reports each pool lane's aggregate phase profile
/// (the per-run registries carry profile.* buckets; shard = the contiguous
/// job block the lane executed). Pure reporting — reads finished results.
void report_shard_profiles(const par::ThreadPool& pool,
                           const std::vector<RunResult>& raw) {
  if (!obs::SimObs::profile_enabled_by_env()) return;
  for (int lane = 0; lane < pool.thread_count(); ++lane) {
    const auto [first, last] = pool.block_of(lane, raw.size());
    if (first >= last) continue;
    obs::PhaseProfiler shard;
    for (std::size_t i = first; i < last; ++i) {
      for (unsigned c = 0; c < obs::kNumCategories; ++c) {
        const auto cat = static_cast<obs::Category>(c);
        const std::string base =
            std::string("profile.") + obs::category_name(cat);
        shard.add_bucket(
            cat,
            static_cast<std::uint64_t>(raw[i].metrics.get(base + ".events")),
            static_cast<std::int64_t>(raw[i].metrics.get(base + ".wall_ns")));
      }
    }
    const std::string label = "sweep shard " + std::to_string(lane) +
                              " (runs " + std::to_string(first) + ".." +
                              std::to_string(last - 1) + ")";
    std::fputs(shard.report(label).c_str(), stderr);
  }
}

}  // namespace

const SweepPoint& SweepResult::at(std::size_t scenario, std::size_t scheme,
                                  std::size_t param,
                                  std::size_t load) const {
  if (scenario >= num_scenarios || scheme >= num_schemes ||
      param >= num_params || load >= num_loads)
    throw std::out_of_range("SweepResult::at: index outside the grid");
  return points[((scenario * num_schemes + scheme) * num_params + param) *
                    num_loads +
                load];
}

SweepResult run_sweep(const SweepSpec& spec, par::ThreadPool* pool) {
  const std::vector<SweepJob> jobs = expand(spec);
  if (pool == nullptr) pool = &par::ThreadPool::global();

  // Every job is an independent Simulator instance with its own RNG
  // streams; fan out and collect by job index.
  std::vector<RunResult> raw = pool->parallel_map<RunResult>(
      jobs.size(), [&jobs, &spec](std::size_t i) {
        return run_scenario(jobs[i].scenario, jobs[i].scheme, spec.options);
      });

  report_shard_profiles(*pool, raw);

  SweepResult result;
  result.num_scenarios = spec.scenarios.size();
  result.num_schemes = spec.schemes.size();
  result.num_params = spec.params.empty() ? 1 : spec.params.size();
  result.num_loads = spec.loads.empty() ? 1 : spec.loads.size();
  const std::size_t num_points = result.num_scenarios * result.num_schemes *
                                 result.num_params * result.num_loads;
  result.points.resize(num_points);

  const auto seeds = static_cast<std::size_t>(spec.seeds);
  for (std::size_t point = 0; point < num_points; ++point) {
    SweepPoint& out = result.points[point];
    out.load_index = point % result.num_loads;
    const std::size_t per_param = point / result.num_loads;
    out.param_index = per_param % result.num_params;
    out.scheme_index = (per_param / result.num_params) % result.num_schemes;
    out.scenario_index =
        per_param / (result.num_params * result.num_schemes);
    out.param = spec.params.empty()
                    ? std::numeric_limits<double>::quiet_NaN()
                    : spec.params[out.param_index];
    out.load = spec.loads.empty()
                   ? std::numeric_limits<double>::quiet_NaN()
                   : spec.loads[out.load_index];
    // Jobs for this point are contiguous and in seed order.
    const auto first = raw.begin() + static_cast<std::ptrdiff_t>(point * seeds);
    std::vector<RunResult> runs(
        std::make_move_iterator(first),
        std::make_move_iterator(first + static_cast<std::ptrdiff_t>(seeds)));
    out.averaged = fold_seeds(runs);
    if (spec.keep_runs) out.runs = std::move(runs);
  }
  return result;
}

}  // namespace wlan::exp
