// Unit and property tests for the Kiefer-Wolfowitz optimizer, including
// convergence on synthetic noisy quasi-concave objectives (the regularity
// conditions of Section III.B).
#include "core/kiefer_wolfowitz.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace {

using wlan::core::KieferWolfowitz;
using wlan::core::KwOptions;
using wlan::util::Rng;

KwOptions linear_opts() {
  KwOptions o;
  o.initial = 0.5;
  o.probe_min = 0.0;
  o.probe_max = 1.0;
  o.value_min = 0.0;
  o.value_max = 1.0;
  return o;
}

TEST(KieferWolfowitz, StepSequences) {
  KieferWolfowitz kw(linear_opts());
  EXPECT_EQ(kw.k(), 2);
  EXPECT_DOUBLE_EQ(kw.a_k(), 0.5);
  EXPECT_NEAR(kw.b_k(), std::pow(2.0, -1.0 / 3.0), 1e-12);
}

TEST(KieferWolfowitz, ProbeAlternatesPlusMinus) {
  KieferWolfowitz kw(linear_opts());
  EXPECT_TRUE(kw.plus_phase());
  const double plus = kw.probe();
  EXPECT_GT(plus, kw.estimate());
  kw.report(1.0);
  EXPECT_FALSE(kw.plus_phase());
  EXPECT_LT(kw.probe(), 0.5);
  kw.report(1.0);  // equal measurements: zero gradient
  EXPECT_TRUE(kw.plus_phase());
  EXPECT_DOUBLE_EQ(kw.estimate(), 0.5);
  EXPECT_EQ(kw.k(), 3);
  EXPECT_EQ(kw.iterations(), 1);
}

TEST(KieferWolfowitz, GradientStepDirection) {
  KieferWolfowitz kw(linear_opts());
  kw.report(2.0);  // S(x + b) larger...
  kw.report(1.0);  // ...than S(x - b): move right
  EXPECT_GT(kw.estimate(), 0.5);
  EXPECT_NEAR(kw.last_gradient(), 1.0 / std::pow(2.0, -1.0 / 3.0), 1e-12);

  KieferWolfowitz kw2(linear_opts());
  kw2.report(1.0);
  kw2.report(2.0);  // move left
  EXPECT_LT(kw2.estimate(), 0.5);
}

TEST(KieferWolfowitz, ProbesClampedToRange) {
  KwOptions o = linear_opts();
  o.probe_max = 0.9;  // Algorithm 1 line 13
  KieferWolfowitz kw(o);
  // b_2 = 0.79: 0.5 + 0.79 clamps to 0.9; 0.5 - 0.79 clamps to 0.
  EXPECT_DOUBLE_EQ(kw.probe(), 0.9);
  kw.report(0.0);
  EXPECT_DOUBLE_EQ(kw.probe(), 0.0);
}

TEST(KieferWolfowitz, ValueClamped) {
  KieferWolfowitz kw(linear_opts());
  kw.report(1000.0);
  kw.report(0.0);  // enormous positive gradient
  EXPECT_DOUBLE_EQ(kw.estimate(), 1.0);
  kw.report(0.0);
  kw.report(1000.0);  // enormous negative gradient
  kw.report(0.0);
  kw.report(1000.0);
  EXPECT_DOUBLE_EQ(kw.estimate(), 0.0);
}

TEST(KieferWolfowitz, ResetValueKeepsK) {
  KieferWolfowitz kw(linear_opts());
  kw.report(1.0);
  kw.report(0.0);
  EXPECT_EQ(kw.k(), 3);
  kw.reset_value(0.5);
  EXPECT_DOUBLE_EQ(kw.estimate(), 0.5);
  EXPECT_EQ(kw.k(), 3);
  EXPECT_TRUE(kw.plus_phase());
}

TEST(KieferWolfowitz, ResetAllRestartsSequences) {
  KieferWolfowitz kw(linear_opts());
  for (int i = 0; i < 6; ++i) kw.report(1.0);
  kw.reset_all(0.5);
  EXPECT_EQ(kw.k(), 2);
  EXPECT_EQ(kw.iterations(), 0);
}

TEST(KieferWolfowitz, Validation) {
  KwOptions o = linear_opts();
  o.initial_k = 0;
  EXPECT_THROW(KieferWolfowitz{o}, std::invalid_argument);
  o = linear_opts();
  o.probe_min = 0.8;
  o.probe_max = 0.2;
  EXPECT_THROW(KieferWolfowitz{o}, std::invalid_argument);
  o = linear_opts();
  o.b_exponent = 0.7;  // violates sum (a_k/b_k)^2 < inf
  EXPECT_THROW(KieferWolfowitz{o}, std::invalid_argument);
  o = linear_opts();
  o.log_space = true;
  o.value_min = 0.0;  // log of 0
  EXPECT_THROW(KieferWolfowitz{o}, std::invalid_argument);
}

TEST(KieferWolfowitz, LogSpaceProbesAreMultiplicative) {
  KwOptions o;
  o.initial = 0.01;
  o.probe_min = 1e-5;
  o.probe_max = 1.0;
  o.value_min = 1e-5;
  o.value_max = 1.0;
  o.log_space = true;
  KieferWolfowitz kw(o);
  EXPECT_NEAR(kw.probe(), 0.01 * std::exp(kw.b_k()), 1e-9);
  kw.report(1.0);
  EXPECT_NEAR(kw.probe(), 0.01 * std::exp(-kw.b_k()), 1e-9);
  EXPECT_NEAR(kw.estimate(), 0.01, 1e-12);
}

// ---------------------------------------------------------------------------
// Convergence properties on synthetic objectives. Each case defines a
// quasi-concave S(x) with optimum x*; KW must approach x* under noise.

struct SyntheticCase {
  const char* name;
  double optimum;
  double (*fn)(double);
  bool log_space;
};

double quadratic(double x) { return 10.0 - 100.0 * (x - 0.3) * (x - 0.3); }
double asymmetric(double x) {
  // Steep rise, slow fall, peak at 0.6 (quasi-concave, not symmetric).
  return x < 0.6 ? 20.0 * x / 0.6 : 20.0 * (1.0 - (x - 0.6));
}
double bell_like(double x) {
  // Shaped like the paper's throughput-vs-p curves: sharp peak near 0.05.
  return 25.0 * x / 0.05 * std::exp(1.0 - x / 0.05) / std::exp(0.0);
}

class KwConvergence
    : public ::testing::TestWithParam<std::tuple<SyntheticCase, int>> {};

TEST_P(KwConvergence, ApproachesOptimumUnderNoise) {
  const auto& [c, seed] = GetParam();
  KwOptions o;
  o.initial = c.log_space ? 0.5 : 0.5;
  o.probe_min = c.log_space ? 1e-4 : 0.0;
  o.probe_max = 1.0;
  o.value_min = c.log_space ? 1e-4 : 0.0;
  o.value_max = 1.0;
  o.log_space = c.log_space;
  KieferWolfowitz kw(o);
  Rng rng(static_cast<std::uint64_t>(seed));
  for (int i = 0; i < 4000; ++i) {
    const double y = c.fn(kw.probe()) + rng.normal(0.0, 0.5);
    kw.report(y);
  }
  // Within 25% (relative) or 0.05 (absolute) of the optimum.
  const double err = std::abs(kw.estimate() - c.optimum);
  EXPECT_LT(err, std::max(0.05, 0.25 * c.optimum))
      << c.name << " seed=" << seed << " estimate=" << kw.estimate();
}

INSTANTIATE_TEST_SUITE_P(
    Objectives, KwConvergence,
    ::testing::Combine(
        ::testing::Values(SyntheticCase{"quadratic", 0.3, quadratic, false},
                          SyntheticCase{"asymmetric", 0.6, asymmetric, false},
                          SyntheticCase{"bell_log", 0.05, bell_like, true}),
        ::testing::Values(1, 2, 3, 4, 5)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(KieferWolfowitz, NoiseFreeConvergesTightly) {
  KwOptions o = linear_opts();
  KieferWolfowitz kw(o);
  for (int i = 0; i < 2000; ++i) kw.report(quadratic(kw.probe()));
  EXPECT_NEAR(kw.estimate(), 0.3, 0.02);
}

}  // namespace
