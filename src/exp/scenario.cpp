#include "exp/scenario.hpp"

#include <stdexcept>

#include "util/csv.hpp"

namespace wlan::exp {

ScenarioConfig ScenarioConfig::connected(int n, std::uint64_t seed) {
  ScenarioConfig s;
  s.num_stations = n;
  s.topology = TopologyKind::kCircleEdge;
  s.radius = 8.0;
  s.seed = seed;
  return s;
}

ScenarioConfig ScenarioConfig::hidden(int n, double disc_radius,
                                      std::uint64_t seed) {
  ScenarioConfig s;
  s.num_stations = n;
  s.topology = TopologyKind::kUniformDisc;
  s.radius = disc_radius;
  s.seed = seed;
  return s;
}

std::string SchemeConfig::name() const {
  switch (kind) {
    case SchemeKind::kStandard80211:
      return "Standard 802.11";
    case SchemeKind::kFixedPPersistent:
      return "p-persistent(p=" + util::format_double(fixed_p, 4) + ")";
    case SchemeKind::kWTopCsma:
      return "wTOP-CSMA";
    case SchemeKind::kToraCsma:
      return "TORA-CSMA";
    case SchemeKind::kIdleSense:
      return "IdleSense";
    case SchemeKind::kFixedRandomReset:
      return "RandomReset(j=" + std::to_string(reset_stage) +
             ",p0=" + util::format_double(reset_p0, 4) + ")";
  }
  return "unknown";
}

SchemeConfig SchemeConfig::standard() {
  SchemeConfig c;
  c.kind = SchemeKind::kStandard80211;
  return c;
}

SchemeConfig SchemeConfig::fixed_p_persistent(double p) {
  SchemeConfig c;
  c.kind = SchemeKind::kFixedPPersistent;
  c.fixed_p = p;
  return c;
}

SchemeConfig SchemeConfig::wtop_csma() {
  SchemeConfig c;
  c.kind = SchemeKind::kWTopCsma;
  return c;
}

SchemeConfig SchemeConfig::tora_csma() {
  SchemeConfig c;
  c.kind = SchemeKind::kToraCsma;
  return c;
}

SchemeConfig SchemeConfig::idle_sense_scheme() {
  SchemeConfig c;
  c.kind = SchemeKind::kIdleSense;
  return c;
}

SchemeConfig SchemeConfig::fixed_random_reset(int stage, double p0) {
  SchemeConfig c;
  c.kind = SchemeKind::kFixedRandomReset;
  c.reset_stage = stage;
  c.reset_p0 = p0;
  return c;
}

double SchemeConfig::weight_of(int station_index) const {
  if (weights.empty()) return 1.0;
  const auto i = static_cast<std::size_t>(station_index);
  return i < weights.size() ? weights[i] : weights.back();
}

ScenarioConfig ScenarioConfig::shadowed(int n, double shadow_probability,
                                        std::uint64_t seed) {
  ScenarioConfig s = connected(n, seed);
  s.shadow_probability = shadow_probability;
  return s;
}

ScenarioConfig ScenarioConfig::multicell(int cells, int n_per_cell,
                                         double spacing, std::uint64_t seed) {
  ScenarioConfig s;
  s.num_stations = cells * n_per_cell;
  s.topology = TopologyKind::kUniformDisc;
  s.radius = 8.0;
  // Finite decode range: the single-BSS default (1e9) would make every
  // cell decode every other, which is neither the paper's discs nor a
  // plausible ESS. Table I's 16/24 keeps interaction local.
  s.decode_radius = 16.0;
  s.sense_radius = 24.0;
  // Near/far capture is what actually separates co-channel cells in an
  // ESS: a frame 8 units away survives an interferer 40 units away. Same
  // threshold the capture tests and ext_robustness use.
  s.phy.capture_ratio = 4.0;
  s.cells = cells;
  s.cell_spacing = spacing;
  s.seed = seed;
  return s;
}

topology::CellPlanSpec cell_spec_of(const ScenarioConfig& scenario) {
  topology::CellPlanSpec spec;
  spec.cells = scenario.cells;
  spec.cols = scenario.cell_cols;
  spec.spacing = scenario.cell_spacing;
  spec.cell_radius = scenario.radius;
  spec.placement = scenario.topology == TopologyKind::kCircleEdge
                       ? topology::CellPlacement::kCircleEdge
                       : topology::CellPlacement::kUniformDisc;
  return spec;
}

topology::CellPlan make_plan(const ScenarioConfig& scenario) {
  return topology::make_cell_plan(cell_spec_of(scenario),
                                  scenario.num_stations, scenario.seed);
}

topology::Layout make_layout(const ScenarioConfig& scenario) {
  if (scenario.cells != 1)
    throw std::logic_error("make_layout: multi-cell scenario; use make_plan");
  switch (scenario.topology) {
    case TopologyKind::kCircleEdge:
      return topology::circle_edge(scenario.num_stations, scenario.radius);
    case TopologyKind::kUniformDisc:
      return topology::uniform_disc(scenario.num_stations, scenario.radius,
                                    scenario.seed);
  }
  throw std::logic_error("make_layout: unknown topology");
}

std::unique_ptr<phy::PropagationModel> make_propagation(
    const ScenarioConfig& scenario) {
  if (scenario.shadow_probability > 0.0) {
    // Every AP's links are exempt from shadowing (one AP at the origin in
    // the single-BSS case — the historical behaviour).
    return std::make_unique<phy::ShadowedDisc>(
        scenario.decode_radius, scenario.sense_radius,
        scenario.shadow_probability, scenario.seed,
        topology::ap_grid(cell_spec_of(scenario)));
  }
  return std::make_unique<phy::DiscPropagation>(scenario.decode_radius,
                                                scenario.sense_radius);
}

std::unique_ptr<mac::AccessStrategy> make_strategy(const SchemeConfig& scheme,
                                                   const mac::WifiParams& phy,
                                                   int index) {
  switch (scheme.kind) {
    case SchemeKind::kStandard80211:
      return std::make_unique<mac::StandardDcfStrategy>(phy);
    case SchemeKind::kFixedPPersistent:
      return std::make_unique<mac::PPersistentStrategy>(
          mac::PPersistentStrategy::weighted_probability(
              scheme.fixed_p, scheme.weight_of(index)),
          scheme.weight_of(index), /*adaptive=*/false);
    case SchemeKind::kWTopCsma:
      // Algorithm 1 node side line 1: initial p_t = 0.1.
      return std::make_unique<mac::PPersistentStrategy>(
          0.1, scheme.weight_of(index), /*adaptive=*/true);
    case SchemeKind::kToraCsma:
      // Algorithm 2 node side line 1: p0 = 1, j = 0.
      return std::make_unique<mac::RandomResetStrategy>(
          phy, /*reset_stage=*/0, /*reset_probability=*/1.0,
          /*adaptive=*/true);
    case SchemeKind::kIdleSense:
      return std::make_unique<core::IdleSenseStrategy>(scheme.idle_sense);
    case SchemeKind::kFixedRandomReset:
      return std::make_unique<mac::RandomResetStrategy>(
          phy, scheme.reset_stage, scheme.reset_p0, /*adaptive=*/false);
  }
  throw std::logic_error("make_strategy: unknown scheme");
}

namespace {

std::unique_ptr<mac::ApController> make_controller(
    const ScenarioConfig& scenario, const SchemeConfig& scheme) {
  switch (scheme.kind) {
    case SchemeKind::kWTopCsma:
      return std::make_unique<core::WTopCsmaController>(scheme.wtop);
    case SchemeKind::kToraCsma:
      return std::make_unique<core::ToraCsmaController>(scenario.phy,
                                                        scheme.tora);
    default:
      return nullptr;
  }
}

}  // namespace

std::unique_ptr<mac::Network> build_network(const ScenarioConfig& scenario,
                                            const SchemeConfig& scheme) {
  std::unique_ptr<mac::Network> net;
  if (scenario.cells == 1) {
    // Single BSS: the historical assembly path, untouched — node ids,
    // add order and RNG streams all match the pre-ESS builds.
    const auto layout = make_layout(scenario);
    net = std::make_unique<mac::Network>(
        scenario.phy, make_propagation(scenario), layout.ap, scenario.seed);
    for (int i = 0; i < scenario.num_stations; ++i) {
      net->add_station(layout.stations[static_cast<std::size_t>(i)],
                       make_strategy(scheme, scenario.phy, i));
    }
  } else {
    const auto plan = make_plan(scenario);
    net = std::make_unique<mac::Network>(
        scenario.phy, make_propagation(scenario), plan.aps, scenario.seed);
    for (int i = 0; i < scenario.num_stations; ++i) {
      net->add_station(plan.stations[static_cast<std::size_t>(i)],
                       make_strategy(scheme, scenario.phy, i),
                       plan.cell_of[static_cast<std::size_t>(i)]);
    }
  }
  net->set_traffic(scenario.traffic);
  // Adaptive schemes get one controller per cell: each BSS adapts to its
  // own contention, exactly as independently administered APs would.
  for (int c = 0; c < net->num_aps(); ++c) {
    if (auto controller = make_controller(scenario, scheme))
      net->set_controller(c, std::move(controller));
  }
  net->finalize();
  return net;
}

}  // namespace wlan::exp
