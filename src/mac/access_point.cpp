#include "mac/access_point.hpp"

#include <cassert>

namespace wlan::mac {

AccessPoint::AccessPoint(sim::Simulator& simulator, phy::Medium& medium,
                         const WifiParams& params, util::Rng rng)
    : sim_(simulator),
      medium_(medium),
      params_(params),
      rng_(rng),
      idle_meter_(params.slot, params.difs) {}

void AccessPoint::attach(phy::NodeId self, phy::NodeId first_station_id,
                         stats::RunCounters* counters) {
  self_ = self;
  first_station_ = first_station_id;
  counters_ = counters;
  schedule_tick();
  sim_.schedule_after(kBeaconInterval, [this] { beacon_due(); });
}

void AccessPoint::schedule_tick() {
  sim_.schedule_after(kControllerTick, [this] {
    if (controller_ != nullptr) controller_->on_tick(sim_.now());
    schedule_tick();
  });
}

void AccessPoint::beacon_due() {
  if (controller_ == nullptr ||
      !params_.beacons_enabled) {  // plain 802.11: no parameters to push
    sim_.schedule_after(kBeaconInterval, [this] { beacon_due(); });
    return;
  }
  // Transmit only on an idle channel (the AP has beacon priority over
  // station DIFS waits; contention details are immaterial here). Retry
  // shortly when busy.
  // response_pending_ covers the SIFS gap before an ACK/CTS: the channel
  // looks idle but the AP's radio is committed.
  if (response_pending_ || medium_.is_transmitting(self_) ||
      medium_.is_busy_for(self_)) {
    sim_.schedule_after(kBeaconRetry, [this] { beacon_due(); });
    return;
  }
  phy::Frame beacon;
  beacon.kind = phy::FrameKind::kBeacon;
  beacon.src = self_;
  beacon.dst = phy::kInvalidNode;  // broadcast; delivery is promiscuous
  beacon.payload_bits = params_.beacon_bits;
  beacon.seq = next_seq_++;
  controller_->fill_ack(beacon.params, sim_.now());
  idle_meter_.on_own_tx_start(sim_.now(), params_.beacon_airtime());
  medium_.start_transmission(self_, beacon, params_.beacon_airtime());
  ++beacons_sent_;
  sim_.schedule_after(kBeaconInterval, [this] { beacon_due(); });
}

void AccessPoint::on_channel_busy(sim::Time now) {
  idle_meter_.on_sensed_busy(now);
}

void AccessPoint::on_channel_idle(sim::Time now) {
  idle_meter_.on_sensed_idle(now);
}

void AccessPoint::on_frame_received(const phy::Frame& frame, bool clean,
                                    sim::Time now) {
  if (frame.dst != self_) return;
  if (frame.kind != phy::FrameKind::kData &&
      frame.kind != phy::FrameKind::kRts)
    return;

  if (!clean) {
    if (frame.kind == phy::FrameKind::kData) ++data_corrupted_;
    // The gap that follows is EIFS-governed at the stations; measure the
    // AP's idle slots consistently (Table III compares per-transmission
    // backoff slots, not IFS overhead).
    idle_meter_.set_next_gap_ifs(params_.eifs());
    return;  // collision: no response; the station will time out
  }

  if (frame.kind == phy::FrameKind::kRts) {
    ++rts_received_;
    // A CTS can only be given when the AP's radio is free for the SIFS
    // response (it always is after a clean RTS, except when a beacon or
    // an earlier response is mid-commit).
    if (!response_pending_ && !medium_.is_transmitting(self_))
      send_cts(frame.src);
    return;
  }

  // IID channel error (paper footnote 1): the frame arrived collision-free
  // but the channel garbled it; no ACK, the station backs off and retries.
  if (params_.frame_error_rate > 0.0 &&
      rng_.bernoulli(params_.frame_error_rate)) {
    ++data_errors_;
    idle_meter_.set_next_gap_ifs(params_.eifs());
    return;
  }

  ++data_received_;
  if (counters_ != nullptr) {
    const auto row = static_cast<std::size_t>(frame.src - first_station_);
    counters_->node(row).bits_delivered += frame.payload_bits;
  }
  if (controller_ != nullptr) controller_->on_data_received(frame, now);
  if (success_cb_) success_cb_(frame.src, now);

  send_ack(frame.src);
}

void AccessPoint::send_cts(phy::NodeId station) {
  response_pending_ = true;
  sim_.schedule_after(params_.sifs, [this, station] {
    response_pending_ = false;
    phy::Frame cts;
    cts.kind = phy::FrameKind::kCts;
    cts.src = self_;
    cts.dst = station;
    cts.seq = next_seq_++;
    // Reserve the remainder of the exchange: SIFS + DATA + SIFS + ACK.
    cts.nav = params_.sifs + params_.data_airtime() + params_.sifs +
              params_.ack_airtime();
    idle_meter_.on_own_tx_start(sim_.now(), params_.cts_airtime());
    medium_.start_transmission(self_, cts, params_.cts_airtime());
  });
}

void AccessPoint::send_ack(phy::NodeId station) {
  // Clean receptions are serialized by the PHY (any overlap would have
  // corrupted one copy), so at most one response is ever pending.
  assert(!response_pending_);
  response_pending_ = true;
  sim_.schedule_after(params_.sifs, [this, station] {
    response_pending_ = false;
    phy::Frame ack;
    ack.kind = phy::FrameKind::kAck;
    ack.src = self_;
    ack.dst = station;
    ack.payload_bits = 0;
    ack.seq = next_seq_++;
    if (controller_ != nullptr) controller_->fill_ack(ack.params, sim_.now());
    idle_meter_.on_own_tx_start(sim_.now(), params_.ack_airtime());
    medium_.start_transmission(self_, ack, params_.ack_airtime());
  });
}

}  // namespace wlan::mac
