// Unit tests for the simulation executive.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

namespace {

using wlan::sim::Duration;
using wlan::sim::Simulator;
using wlan::sim::Time;

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), Time::zero());
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunUntilAdvancesClockToLimit) {
  Simulator sim;
  sim.run_until(Time::from_seconds(5.0));
  EXPECT_EQ(sim.now(), Time::from_seconds(5.0));
}

TEST(Simulator, CallbackSeesItsScheduledTime) {
  Simulator sim;
  Time seen = Time::zero();
  sim.schedule_at(Time::from_ns(500), [&] { seen = sim.now(); });
  sim.run_until(Time::from_ns(1000));
  EXPECT_EQ(seen.ns(), 500);
}

TEST(Simulator, EventsAtLimitRun) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(Time::from_ns(1000), [&] { ran = true; });
  sim.run_until(Time::from_ns(1000));
  EXPECT_TRUE(ran);
}

TEST(Simulator, EventsPastLimitDoNotRun) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(Time::from_ns(1001), [&] { ran = true; });
  sim.run_until(Time::from_ns(1000));
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.now(), Time::from_ns(1000));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  std::vector<std::int64_t> times;
  sim.schedule_after(Duration::nanoseconds(10), [&] {
    times.push_back(sim.now().ns());
    sim.schedule_after(Duration::nanoseconds(10),
                       [&] { times.push_back(sim.now().ns()); });
  });
  sim.run_until(Time::from_ns(100));
  EXPECT_EQ(times, (std::vector<std::int64_t>{10, 20}));
}

TEST(Simulator, CancelInsideCallback) {
  Simulator sim;
  bool second_ran = false;
  auto id = sim.schedule_at(Time::from_ns(20), [&] { second_ran = true; });
  sim.schedule_at(Time::from_ns(10), [&] { sim.cancel(id); });
  sim.run_until(Time::from_ns(100));
  EXPECT_FALSE(second_ran);
}

TEST(Simulator, StopHaltsProcessing) {
  Simulator sim;
  int ran = 0;
  sim.schedule_at(Time::from_ns(1), [&] {
    ++ran;
    sim.stop();
  });
  sim.schedule_at(Time::from_ns(2), [&] { ++ran; });
  sim.run_until(Time::from_ns(100));
  EXPECT_EQ(ran, 1);
  // A subsequent run resumes with the remaining events.
  sim.run_until(Time::from_ns(100));
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, RunAllDrainsQueue) {
  Simulator sim;
  int ran = 0;
  for (int i = 1; i <= 5; ++i)
    sim.schedule_at(Time::from_ns(i), [&] { ++ran; });
  EXPECT_EQ(sim.run_all(), 5u);
  EXPECT_EQ(ran, 5);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int ran = 0;
  sim.schedule_at(Time::from_ns(1), [&] { ++ran; });
  sim.schedule_at(Time::from_ns(2), [&] { ++ran; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(Time::from_ns(i + 1), [] {});
  sim.run_all();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulator, QueueStatsExposed) {
  Simulator sim;
  auto id = sim.schedule_at(Time::from_ns(5), [] {});
  sim.schedule_at(Time::from_ns(10), [] {});
  sim.schedule_at(Time::from_ns(15), [] {});
  sim.cancel(id);
  sim.run_until(Time::from_ns(10));
  const auto stats = sim.queue_stats();
  EXPECT_EQ(stats.scheduled, 3u);
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.fired, 1u);
  EXPECT_EQ(stats.live, 1u);
  EXPECT_EQ(stats.heap_callbacks, 0u);  // captureless lambdas stay inline
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(Simulator, CancelledEventsDoNotCountAsExecuted) {
  Simulator sim;
  int ran = 0;
  auto a = sim.schedule_at(Time::from_ns(1), [&] { ++ran; });
  sim.schedule_at(Time::from_ns(2), [&] { ++ran; });
  sim.cancel(a);
  EXPECT_EQ(sim.run_until(Time::from_ns(10)), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(Simulator, SameTimeEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  // Mirrors the MAC's two-phase commit: decisions at t, then radio starts
  // scheduled at the same t run strictly after.
  sim.schedule_at(Time::from_ns(10), [&] {
    order.push_back(1);
    sim.schedule_at(Time::from_ns(10), [&] { order.push_back(3); });
  });
  sim.schedule_at(Time::from_ns(10), [&] { order.push_back(2); });
  sim.run_until(Time::from_ns(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// --- Watchdog ---------------------------------------------------------------

using wlan::sim::WatchdogExpired;

/// Schedules an endless self-rescheduling tick — the deterministic shape
/// of a "hung" simulation.
void arm_endless_tick(Simulator& sim) {
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [&sim, tick] {
    sim.schedule_after(Duration::nanoseconds(10), [tick] { (*tick)(); });
  };
  sim.schedule_after(Duration::nanoseconds(10), [tick] { (*tick)(); });
}

TEST(Simulator, WatchdogEventBudgetIsExactAndDeterministic) {
  Simulator sim;
  arm_endless_tick(sim);
  sim.set_watchdog(/*max_events=*/100, /*max_wall_ms=*/0);
  try {
    sim.run_all();
    FAIL() << "watchdog did not fire";
  } catch (const WatchdogExpired& e) {
    EXPECT_EQ(e.kind, WatchdogExpired::Kind::kEvents);
    EXPECT_EQ(sim.events_executed(), 100u);
  }
}

TEST(Simulator, WatchdogDoesNotFireUnderBudget) {
  Simulator sim;
  int ran = 0;
  for (int i = 1; i <= 5; ++i)
    sim.schedule_at(Time::from_ns(i * 10), [&] { ++ran; });
  sim.set_watchdog(/*max_events=*/100, /*max_wall_ms=*/0);
  EXPECT_NO_THROW(sim.run_all());
  EXPECT_EQ(ran, 5);
}

TEST(Simulator, WatchdogDisarmsAfterFiring) {
  Simulator sim;
  arm_endless_tick(sim);
  sim.set_watchdog(/*max_events=*/10, /*max_wall_ms=*/0);
  EXPECT_THROW(sim.run_all(), WatchdogExpired);
  // The throw disarmed the watchdog: stepping further must not re-trip.
  EXPECT_NO_THROW(sim.step());
}

TEST(Simulator, WatchdogWallDeadlineFiresOnAHungLoop) {
  Simulator sim;
  arm_endless_tick(sim);
  // A 1 ms wall deadline on an endless loop: fires within the test's own
  // timeout regardless of machine speed (events are ~free, so the stride
  // between wall checks passes in microseconds).
  sim.set_watchdog(/*max_events=*/0, /*max_wall_ms=*/1);
  try {
    sim.run_all();
    FAIL() << "wall watchdog did not fire";
  } catch (const WatchdogExpired& e) {
    EXPECT_EQ(e.kind, WatchdogExpired::Kind::kWall);
  }
}

TEST(Simulator, ZeroZeroDisarmsTheWatchdog) {
  Simulator sim;
  arm_endless_tick(sim);
  sim.set_watchdog(10, 0);
  sim.set_watchdog(0, 0);  // disarm before running
  EXPECT_NO_THROW(sim.run_until(Time::from_ns(10'000)));
}

}  // namespace
