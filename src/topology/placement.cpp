#include "topology/placement.hpp"

#include <cmath>
#include <stdexcept>

namespace wlan::topology {

Layout circle_edge(int n, double radius) {
  if (n < 0) throw std::invalid_argument("circle_edge: negative n");
  Layout layout;
  layout.ap = {0.0, 0.0};
  layout.stations.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double theta = 2.0 * M_PI * static_cast<double>(i) / std::max(n, 1);
    layout.stations.push_back(phy::polar(radius, theta));
  }
  return layout;
}

Layout uniform_disc(int n, double radius, util::Rng& rng) {
  if (n < 0) throw std::invalid_argument("uniform_disc: negative n");
  Layout layout;
  layout.ap = {0.0, 0.0};
  layout.stations.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double r = radius * std::sqrt(rng.uniform());
    const double theta = rng.uniform(0.0, 2.0 * M_PI);
    layout.stations.push_back(phy::polar(r, theta));
  }
  return layout;
}

Layout uniform_disc(int n, double radius, std::uint64_t seed) {
  util::Rng rng(seed, /*stream=*/0xD15C);
  return uniform_disc(n, radius, rng);
}

}  // namespace wlan::topology
